//! Visual sensing substrate.
//!
//! The paper extracts visual identities from CUHK02 person snapshots using
//! human detection plus appearance features; this crate provides the
//! synthetic equivalent (see DESIGN.md §2): every person owns a
//! ground-truth appearance vector ([`AppearanceGallery`]); each detection
//! observes it with Gaussian noise ([`VScenarioBuilder`]); detections can
//! be missed ([`DetectionModel`], the paper's *missing VID* issue); and
//! re-identification scores follow the paper's probability model
//! ([`reid`]).
//!
//! V-data processing is the expensive side of EV-Matching. The
//! [`cost`] module models that expense with deterministic busy-work so the
//! E-stage ≪ V-stage asymmetry of the paper's Figures 8–9 emerges in real
//! wall-clock measurements.
//!
//! # Example
//!
//! ```
//! use ev_core::region::GridRegion;
//! use ev_mobility::{World, WaypointParams};
//! use ev_vision::{AppearanceGallery, DetectionModel, VScenarioBuilder};
//!
//! let region = GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap();
//! let traces = World::random_waypoint(region.clone(), 20, WaypointParams::default(), 3)
//!     .run(30);
//! let gallery = AppearanceGallery::generate(20, 64, 5);
//! let builder = VScenarioBuilder::new(region, gallery);
//! let scenarios = builder.build(&traces, DetectionModel::perfect(), 9);
//! assert!(!scenarios.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod cost;
mod gallery;
pub mod reid;

pub use builder::{DetectionModel, VScenarioBuilder};
pub use gallery::AppearanceGallery;
