//! V-Scenario construction: human detection and feature extraction over
//! the synthetic video corpus.

use crate::gallery::AppearanceGallery;
use ev_core::region::{CellId, GridRegion};
use ev_core::scenario::{Detection, VScenario};
use ev_core::time::Timestamp;
use ev_mobility::TraceSet;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The human-detection model: with probability `miss_rate` a person
/// present in a scenario produces **no** detection (occlusion or detector
/// failure — the paper's *missing VID* issue, §IV-C1). Detected persons
/// yield a feature observation with per-component noise `feature_sigma`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Probability that a present person is not detected in a scenario.
    pub miss_rate: f64,
    /// Standard deviation of per-component appearance observation noise.
    pub feature_sigma: f64,
}

impl DetectionModel {
    /// Perfect detector: never misses, observes exact features.
    #[must_use]
    pub const fn perfect() -> Self {
        DetectionModel {
            miss_rate: 0.0,
            feature_sigma: 0.0,
        }
    }

    /// A realistic default: 2 % misses (paper Fig. 11 starts at 2 %),
    /// moderate appearance noise.
    #[must_use]
    pub const fn realistic() -> Self {
        DetectionModel {
            miss_rate: 0.02,
            feature_sigma: 0.05,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] if `miss_rate` is
    /// outside `[0, 1]` or `feature_sigma` is negative or non-finite.
    pub fn validate(&self) -> ev_core::Result<()> {
        if !self.miss_rate.is_finite() || !(0.0..=1.0).contains(&self.miss_rate) {
            return Err(ev_core::Error::InvalidParameter {
                name: "miss_rate",
                reason: format!("must be in [0, 1], got {}", self.miss_rate),
            });
        }
        if !self.feature_sigma.is_finite() || self.feature_sigma < 0.0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "feature_sigma",
                reason: format!("must be non-negative, got {}", self.feature_sigma),
            });
        }
        Ok(())
    }
}

/// Builds V-Scenarios from ground-truth trajectories and a gallery.
///
/// Every person physically present in a cell appears in that cell's
/// V-Scenario (subject to the detection model) — including people who
/// carry no electronic device. The VID attached to a detection is the
/// person's canonical VID, reflecting the paper's *VID consistency*
/// assumption (appearance-based re-identification links detections of the
/// same person across scenarios).
#[derive(Debug, Clone)]
pub struct VScenarioBuilder {
    region: GridRegion,
    gallery: AppearanceGallery,
}

impl VScenarioBuilder {
    /// Creates a builder over `region` using `gallery` as ground truth.
    #[must_use]
    pub fn new(region: GridRegion, gallery: AppearanceGallery) -> Self {
        VScenarioBuilder { region, gallery }
    }

    /// The gallery backing this builder.
    #[must_use]
    pub fn gallery(&self) -> &AppearanceGallery {
        &self.gallery
    }

    /// The region scenarios are built over.
    #[must_use]
    pub fn region(&self) -> &GridRegion {
        &self.region
    }

    /// Builds one V-Scenario per (tick, cell) with at least one detection.
    /// Deterministic for a given `seed`. Sorted by scenario id.
    #[must_use]
    pub fn build(&self, traces: &TraceSet, model: DetectionModel, seed: u64) -> Vec<VScenario> {
        self.build_windowed(traces, model, 1, seed)
    }

    /// Builds V-Scenarios aggregated over consecutive windows of `window`
    /// ticks (to pair with practical E-Scenarios built over the same
    /// window). A person is present in a (window, cell) if they occupied
    /// the cell at any tick of the window; each present person is detected
    /// at most once per scenario.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn build_windowed(
        &self,
        traces: &TraceSet,
        model: DetectionModel,
        window: u64,
        seed: u64,
    ) -> Vec<VScenario> {
        assert!(window > 0, "window length must be at least one tick");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // (window start, cell) -> persons present.
        let mut presence: BTreeMap<(Timestamp, CellId), Vec<ev_core::PersonId>> = BTreeMap::new();
        for (person, trajectory) in traces.iter() {
            let mut last: Option<(Timestamp, CellId)> = None;
            for (offset, &pos) in trajectory.positions.iter().enumerate() {
                let t = trajectory.start + offset as u64;
                let win = Timestamp::new((t.tick() / window) * window);
                let Ok(cell) = self.region.cell_at(pos) else {
                    continue;
                };
                if last == Some((win, cell)) {
                    continue; // already recorded for this window
                }
                last = Some((win, cell));
                let entry = presence.entry((win, cell)).or_default();
                if entry.last() != Some(&person) {
                    entry.push(person);
                }
            }
        }
        let mut scenarios = Vec::with_capacity(presence.len());
        for ((start, cell), persons) in presence {
            let mut scenario = VScenario::new(cell, start);
            for person in persons {
                if model.miss_rate > 0.0 && rng.gen::<f64>() < model.miss_rate {
                    continue; // missed detection
                }
                if let Some(feature) = self.gallery.observe(person, model.feature_sigma, &mut rng) {
                    scenario.push(Detection {
                        vid: person.canonical_vid(),
                        feature,
                    });
                }
            }
            if !scenario.is_empty() {
                scenarios.push(scenario);
            }
        }
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::geometry::Point;
    use ev_core::ids::PersonId;
    use ev_mobility::Trajectory;

    fn region() -> GridRegion {
        GridRegion::new(100.0, 100.0, 10.0, 1.0).unwrap()
    }

    fn stationary(person: u64, p: Point, ticks: usize) -> (PersonId, Trajectory) {
        let mut t = Trajectory::new(Timestamp::ZERO);
        for _ in 0..ticks {
            t.push(p);
        }
        (PersonId::new(person), t)
    }

    fn traces(people: Vec<(PersonId, Trajectory)>) -> TraceSet {
        let mut s = TraceSet::new();
        for (p, t) in people {
            s.insert(p, t);
        }
        s
    }

    #[test]
    fn perfect_detector_sees_everyone_every_tick() {
        let ts = traces(vec![
            stationary(0, Point::new(15.0, 15.0), 3),
            stationary(1, Point::new(16.0, 14.0), 3),
        ]);
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(2, 16, 0));
        let scenarios = b.build(&ts, DetectionModel::perfect(), 0);
        assert_eq!(scenarios.len(), 3);
        for s in &scenarios {
            assert_eq!(s.len(), 2);
            assert!(s.contains(PersonId::new(0).canonical_vid()));
            assert!(s.contains(PersonId::new(1).canonical_vid()));
        }
    }

    #[test]
    fn device_less_people_still_appear_in_v_data() {
        // V-data knows nothing about EIDs: every body is detectable.
        let ts = traces(vec![stationary(0, Point::new(55.0, 55.0), 1)]);
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 16, 0));
        let scenarios = b.build(&ts, DetectionModel::perfect(), 0);
        assert_eq!(scenarios.len(), 1);
        assert_eq!(scenarios[0].len(), 1);
    }

    #[test]
    fn miss_rate_drops_roughly_that_fraction() {
        let ts = traces(vec![stationary(0, Point::new(15.0, 15.0), 1000)]);
        let model = DetectionModel {
            miss_rate: 0.3,
            feature_sigma: 0.0,
        };
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 16, 0));
        let scenarios = b.build(&ts, model, 1);
        // 1000 ticks, each a scenario with one person at 70 % detection.
        let detected = scenarios.len() as f64;
        assert!(
            (detected - 700.0).abs() < 60.0,
            "detected {detected} of 1000 at 30% miss rate"
        );
    }

    #[test]
    fn full_miss_rate_produces_no_scenarios() {
        let ts = traces(vec![stationary(0, Point::new(15.0, 15.0), 10)]);
        let model = DetectionModel {
            miss_rate: 1.0,
            feature_sigma: 0.0,
        };
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 16, 0));
        assert!(b.build(&ts, model, 1).is_empty());
    }

    #[test]
    fn windowed_build_detects_each_person_once_per_window() {
        let ts = traces(vec![stationary(0, Point::new(15.0, 15.0), 10)]);
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 16, 0));
        let scenarios = b.build_windowed(&ts, DetectionModel::perfect(), 5, 0);
        assert_eq!(scenarios.len(), 2, "10 ticks / window of 5");
        for s in &scenarios {
            assert_eq!(s.len(), 1);
        }
    }

    #[test]
    fn windowed_build_includes_cells_visited_mid_window() {
        // A person teleporting between two cells within one window shows
        // up in both cells' scenarios.
        let mut t = Trajectory::new(Timestamp::ZERO);
        for i in 0..4 {
            t.push(if i % 2 == 0 {
                Point::new(15.0, 15.0)
            } else {
                Point::new(55.0, 55.0)
            });
        }
        let ts = traces(vec![(PersonId::new(0), t)]);
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 16, 0));
        let scenarios = b.build_windowed(&ts, DetectionModel::perfect(), 4, 0);
        assert_eq!(scenarios.len(), 2, "present in both cells this window");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let ts = traces(vec![stationary(0, Point::new(15.0, 15.0), 20)]);
        let model = DetectionModel {
            miss_rate: 0.5,
            feature_sigma: 0.1,
        };
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 16, 0));
        assert_eq!(b.build(&ts, model, 3), b.build(&ts, model, 3));
        assert_ne!(b.build(&ts, model, 3), b.build(&ts, model, 4));
    }

    #[test]
    fn detection_model_validation() {
        assert!(DetectionModel::perfect().validate().is_ok());
        assert!(DetectionModel::realistic().validate().is_ok());
        assert!(DetectionModel {
            miss_rate: 1.5,
            feature_sigma: 0.0
        }
        .validate()
        .is_err());
        assert!(DetectionModel {
            miss_rate: 0.0,
            feature_sigma: -0.1
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_panics() {
        let ts = traces(vec![]);
        let b = VScenarioBuilder::new(region(), AppearanceGallery::generate(1, 4, 0));
        let _ = b.build_windowed(&ts, DetectionModel::perfect(), 0, 0);
    }
}
