//! Property tests for the vision substrate: gallery separation, builder
//! consistency with ground truth, and the re-id probability model.

use ev_core::feature::{FeatureVector, Metric};
use ev_core::geometry::Point;
use ev_core::ids::PersonId;
use ev_core::region::GridRegion;
use ev_core::time::Timestamp;
use ev_mobility::{TraceSet, Trajectory};
use ev_vision::reid::{absence_probability, joint_membership_probability, membership_probability};
use ev_vision::{AppearanceGallery, DetectionModel, VScenarioBuilder};
use proptest::prelude::*;

fn region() -> GridRegion {
    GridRegion::new(100.0, 100.0, 20.0, 2.0).expect("valid region")
}

fn traces(paths: &[Vec<(f64, f64)>]) -> TraceSet {
    let mut set = TraceSet::new();
    for (i, path) in paths.iter().enumerate() {
        let mut t = Trajectory::new(Timestamp::ZERO);
        for &(x, y) in path {
            t.push(Point::new(x, y));
        }
        set.insert(PersonId::new(i as u64), t);
    }
    set
}

fn arb_paths() -> impl Strategy<Value = Vec<Vec<(f64, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 5..20),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A perfect detector films exactly the people physically present:
    /// every detection corresponds to a person who visited that cell in
    /// that window, and every visit produces a detection.
    #[test]
    fn perfect_detection_equals_presence(paths in arb_paths()) {
        let ts = traces(&paths);
        let gallery = AppearanceGallery::generate(paths.len() as u64, 8, 3);
        let builder = VScenarioBuilder::new(region(), gallery);
        let window = 5u64;
        let scenarios = builder.build_windowed(&ts, DetectionModel::perfect(), window, 0);
        // Reconstruct presence from the traces directly.
        use std::collections::BTreeSet;
        let mut presence: BTreeSet<(u64, usize, u64)> = BTreeSet::new();
        for (person, trajectory) in ts.iter() {
            for (offset, &pos) in trajectory.positions.iter().enumerate() {
                let t = offset as u64;
                let cell = region().cell_at(pos).expect("in region");
                presence.insert(((t / window) * window, cell.index(), person.as_u64()));
            }
        }
        let mut filmed: BTreeSet<(u64, usize, u64)> = BTreeSet::new();
        for s in &scenarios {
            for vid in s.vids() {
                filmed.insert((s.time().tick(), s.cell().index(), vid.as_u64()));
            }
        }
        prop_assert_eq!(filmed, presence);
    }

    /// Membership probability is a probability, symmetric in scenario
    /// content order, and complements absence.
    #[test]
    fn reid_probabilities_are_probabilities(
        candidate in prop::collection::vec(0.0f64..=1.0, 4),
        features in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 0..6),
    ) {
        use ev_core::region::CellId;
        use ev_core::scenario::{Detection, VScenario};
        use ev_core::Vid;
        let cand = FeatureVector::new(candidate).expect("in range");
        let mut scenario = VScenario::new(CellId::new(0), Timestamp::ZERO);
        for (i, f) in features.iter().enumerate() {
            scenario.push(Detection {
                vid: Vid::new(i as u64),
                feature: FeatureVector::new(f.clone()).expect("in range"),
            });
        }
        for metric in [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine] {
            let p = membership_probability(&cand, &scenario, metric).expect("same dims");
            let q = absence_probability(&cand, &scenario, metric).expect("same dims");
            prop_assert!((0.0..=1.0).contains(&p), "{metric:?}: {p}");
            prop_assert!((p + q - 1.0).abs() < 1e-12);
            let joint = joint_membership_probability(&cand, [&scenario, &scenario], metric)
                .expect("same dims");
            prop_assert!((joint - p * p).abs() < 1e-12);
        }
    }

    /// A candidate identical to some detection always achieves the
    /// maximal membership probability of 1.
    #[test]
    fn exact_match_has_probability_one(
        features in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 4), 1..6),
        pick in any::<prop::sample::Index>(),
    ) {
        use ev_core::region::CellId;
        use ev_core::scenario::{Detection, VScenario};
        use ev_core::Vid;
        let mut scenario = VScenario::new(CellId::new(0), Timestamp::ZERO);
        for (i, f) in features.iter().enumerate() {
            scenario.push(Detection {
                vid: Vid::new(i as u64),
                feature: FeatureVector::new(f.clone()).expect("in range"),
            });
        }
        let chosen = pick.get(&features);
        let cand = FeatureVector::new(chosen.clone()).expect("in range");
        let p = membership_probability(&cand, &scenario, Metric::NormalizedL2)
            .expect("same dims");
        prop_assert!((p - 1.0).abs() < 1e-12);
    }

    /// Observation noise moves a descriptor strictly less (in
    /// expectation) than the gap to a different identity, for reasonable
    /// sigma — the premise that makes appearance matching work at all.
    #[test]
    fn observations_cluster_around_their_identity(seed in any::<u64>()) {
        let gallery = AppearanceGallery::generate(20, 64, seed);
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
        for p in 0..20u64 {
            let person = PersonId::new(p);
            let truth = gallery.feature_of(person).expect("exists");
            let obs = gallery.observe(person, 0.05, &mut rng).expect("exists");
            let self_dist = truth
                .distance(&obs, Metric::NormalizedL2)
                .expect("same dims");
            let other = gallery
                .feature_of(PersonId::new((p + 1) % 20))
                .expect("exists");
            let other_dist = truth
                .distance(other, Metric::NormalizedL2)
                .expect("same dims");
            prop_assert!(
                self_dist < other_dist,
                "person {p}: self {self_dist} vs other {other_dist}"
            );
        }
    }
}
