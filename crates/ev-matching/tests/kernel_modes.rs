//! Exact-mode report identity across similarity kernels (DESIGN.md §9):
//! on randomized corpora, every kernel mode — the per-pair scalar
//! reference, the SoA block kernel, and the quantized prefilter — must
//! produce **identical** match outcomes, through both the exhaustive
//! scan and the anytime scorer, with and without exclusion.

use ev_core::feature::{FeatureVector, Metric};
use ev_core::ids::{Eid, Vid};
use ev_core::kernel::KernelMode;
use ev_core::region::CellId;
use ev_core::scenario::{Detection, ScenarioId, VScenario};
use ev_core::time::Timestamp;
use ev_matching::anytime::{partial_filter_one, AnytimeConfig};
use ev_matching::vfilter::{filter_one, filter_vids, VFilterConfig};
use ev_store::VideoStore;
use ev_vision::cost::CostModel;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

const MODES: [KernelMode; 3] = [KernelMode::Scalar, KernelMode::Block, KernelMode::Quantized];

/// A random V-world like `anytime_bounds`' but with enough people per
/// scenario to cross the kernel's 8-row lane boundary, and a
/// configurable dimensionality.
fn random_world(
    seed: u64,
    dim: usize,
    people: u64,
    scenarios: usize,
    presence: f64,
) -> (VideoStore, Vec<ScenarioId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let anchors: Vec<Vec<f64>> = (0..people)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let mut vs = Vec::new();
    let mut list = Vec::new();
    for t in 0..scenarios {
        let mut v = VScenario::new(CellId::new(0), Timestamp::new(t as u64));
        for p in 0..people {
            if rng.gen_bool(presence) {
                let f: Vec<f64> = anchors[p as usize]
                    .iter()
                    .map(|&a| a + rng.gen_range(-0.05..0.05))
                    .collect();
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::from_clamped(f),
                });
            }
        }
        list.push(ScenarioId::new(Timestamp::new(t as u64), CellId::new(0)));
        vs.push(v);
    }
    (VideoStore::new(vs, CostModel::free()), list)
}

fn metric_of(pick: usize) -> Metric {
    [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine][pick % 3]
}

proptest! {
    /// Batch filtering (exclusion on and off) returns the same outcome
    /// vector — every field, including the f64 confidence/margin/share
    /// — no matter which kernel scored it.
    #[test]
    fn kernels_agree_on_full_batches(
        seed in 0u64..48,
        dim in 1usize..12,
        people in 2u64..14,
        scenarios in 1usize..8,
        metric_pick in 0usize..3,
        exclusion in any::<bool>(),
    ) {
        let (video, list) = random_world(seed, dim, people, scenarios, 0.7);
        // Three EIDs over staggered sublists, so exclusion ordering and
        // gallery-cache sharing are both in play.
        let mut lists: BTreeMap<Eid, Vec<ScenarioId>> = BTreeMap::new();
        lists.insert(Eid::from_u64(1), list.clone());
        lists.insert(Eid::from_u64(2), list.iter().copied().skip(1).collect());
        lists.insert(Eid::from_u64(3), list.iter().copied().step_by(2).collect());
        let base = VFilterConfig {
            metric: metric_of(metric_pick),
            exclusion,
            kernel: KernelMode::Scalar,
            ..VFilterConfig::default()
        };
        let reference = filter_vids(&lists, &video, &base);
        for mode in [KernelMode::Block, KernelMode::Quantized] {
            let outcomes = filter_vids(&lists, &video, &VFilterConfig { kernel: mode, ..base });
            prop_assert_eq!(&outcomes, &reference, "kernel mode {:?}", mode);
        }
    }

    /// The anytime scorer's exact refinements go through the same
    /// kernel dispatch: partial outcomes (bounds, convergence, votes)
    /// are identical across modes.
    #[test]
    fn anytime_partials_agree_across_kernels(
        seed in 0u64..40,
        dim in 1usize..8,
        people in 2u64..10,
        scenarios in 1usize..8,
        metric_pick in 0usize..3,
        confidence in 0.0f64..1.0,
        budget_raw in 0usize..9,
    ) {
        let budget = budget_raw.checked_sub(1);
        let (video, list) = random_world(seed, dim, people, scenarios, 0.7);
        let run = |mode: KernelMode| {
            partial_filter_one(
                Eid::from_u64(1),
                &list,
                &video,
                &VFilterConfig {
                    metric: metric_of(metric_pick),
                    anytime: Some(AnytimeConfig { confidence, budget_scenarios: budget }),
                    kernel: mode,
                    ..VFilterConfig::default()
                },
                &BTreeSet::new(),
            )
        };
        let reference = run(KernelMode::Scalar);
        for mode in [KernelMode::Block, KernelMode::Quantized] {
            prop_assert_eq!(&run(mode), &reference, "kernel mode {:?}", mode);
        }
    }
}

/// A gallery whose rows disagree on dimensionality is rejected once at
/// block build; the scalar path errors per pair. Both must land on the
/// same outcome (that gallery contributes membership 0 to everyone).
#[test]
fn mixed_dimension_galleries_score_identically_in_every_kernel() {
    let mut good = VScenario::new(CellId::new(0), Timestamp::new(0));
    let mut mixed = VScenario::new(CellId::new(0), Timestamp::new(1));
    for (vid, f) in [
        (1u64, vec![0.9, 0.9]),
        (2, vec![0.1, 0.1]),
        (3, vec![0.5, 0.6]),
    ] {
        good.push(Detection {
            vid: Vid::new(vid),
            feature: FeatureVector::from_clamped(f),
        });
    }
    mixed.push(Detection {
        vid: Vid::new(1),
        feature: FeatureVector::from_clamped(vec![0.9, 0.9]),
    });
    mixed.push(Detection {
        vid: Vid::new(2),
        feature: FeatureVector::from_clamped(vec![0.1, 0.1, 0.7]), // stray dim
    });
    let video = VideoStore::new(vec![good, mixed], CostModel::free());
    let list = vec![
        ScenarioId::new(Timestamp::new(0), CellId::new(0)),
        ScenarioId::new(Timestamp::new(1), CellId::new(0)),
    ];
    let outcomes: Vec<_> = MODES
        .iter()
        .map(|&kernel| {
            filter_one(
                Eid::from_u64(1),
                &list,
                &video,
                &VFilterConfig {
                    kernel,
                    ..VFilterConfig::default()
                },
                &BTreeSet::new(),
            )
        })
        .collect();
    assert_eq!(outcomes[0], outcomes[1], "scalar vs block");
    assert_eq!(outcomes[0], outcomes[2], "scalar vs quantized");
}

/// Scenarios that exist but hold zero detections are the empty-gallery
/// edge of the `majority_winner` panic fix: zero votes must flow to the
/// explicit NoEvidence outcome — never a panic — in every kernel mode.
#[test]
fn empty_galleries_flow_to_no_evidence_in_every_kernel() {
    let empty0 = VScenario::new(CellId::new(0), Timestamp::new(0));
    let empty1 = VScenario::new(CellId::new(1), Timestamp::new(1));
    let video = VideoStore::new(vec![empty0, empty1], CostModel::free());
    let list = vec![
        ScenarioId::new(Timestamp::new(0), CellId::new(0)),
        ScenarioId::new(Timestamp::new(1), CellId::new(1)),
    ];
    for kernel in MODES {
        let cfg = VFilterConfig {
            kernel,
            ..VFilterConfig::default()
        };
        let out = filter_one(Eid::from_u64(9), &list, &video, &cfg, &BTreeSet::new());
        assert!(out.is_no_evidence(), "kernel {kernel}: {out:?}");
        assert!(!out.vote_share.is_nan());
        // The anytime route hits its own majority_winner consumer.
        let partial = partial_filter_one(
            Eid::from_u64(9),
            &list,
            &video,
            &VFilterConfig {
                anytime: Some(AnytimeConfig::with_confidence(0.5)),
                ..cfg
            },
            &BTreeSet::new(),
        );
        assert!(partial.outcome.is_no_evidence(), "kernel {kernel}");
    }
}
