//! Certifies the streaming Algorithm-1 delta-update against a
//! from-scratch rebuild: for any chronological scenario pool, absorbing
//! it as an arbitrary sequence of time-ordered ingest batches must
//! leave `IncrementalSplit` in exactly the state `split_ideal` computes
//! over the final store — partition, recorded splitters, padded lists,
//! and examined counts alike.

use ev_core::ids::Eid;
use ev_core::region::CellId;
use ev_core::scenario::{EScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_matching::incremental::IncrementalSplit;
use ev_matching::setsplit::{split_ideal, SelectionStrategy, SetSplitConfig};
use ev_store::EScenarioStore;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// A chronological scenario pool: one pass over `times × cells`, each
/// scenario holding a random cohort of `people`. Returned in id order,
/// so any prefix/suffix cut respects the streaming splice contract.
fn scenario_pool(seed: u64, cells: usize, times: u64, people: u64) -> Vec<EScenario> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pool = Vec::new();
    for t in 0..times {
        for c in 0..cells {
            let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
            for p in 0..people {
                if rng.gen_bool(1.0 / cells as f64) {
                    let attr = if rng.gen_bool(0.85) {
                        ZoneAttr::Inclusive
                    } else {
                        ZoneAttr::Vague
                    };
                    e.insert(Eid::from_u64(p), attr);
                }
            }
            if !e.is_empty() {
                pool.push(e);
            }
        }
    }
    pool
}

fn chrono_config(max_scenarios: Option<usize>) -> SetSplitConfig {
    SetSplitConfig {
        strategy: SelectionStrategy::Chronological,
        max_scenarios,
        ..SetSplitConfig::default()
    }
}

/// Splits `pool` into batches at the given cut fractions, streams the
/// batches through store ingest + `IncrementalSplit::absorb`, and
/// asserts the final output equals the from-scratch `split_ideal`.
fn assert_delta_equivalence(
    pool: Vec<EScenario>,
    cuts: &[f64],
    n_targets: u64,
    max_scenarios: Option<usize>,
) {
    let targets: BTreeSet<Eid> = (0..n_targets).map(Eid::from_u64).collect();
    let config = chrono_config(max_scenarios);

    let full_store = EScenarioStore::from_scenarios(pool.clone());
    let expected = split_ideal(&full_store, &targets, &config);

    // Cut points, sorted and deduplicated, as indices into the pool.
    let mut idx: Vec<usize> = cuts
        .iter()
        .map(|f| ((pool.len() as f64) * f) as usize)
        .collect();
    idx.push(pool.len());
    idx.sort_unstable();
    idx.dedup();

    let mut store = EScenarioStore::from_scenarios(Vec::new());
    let mut live = IncrementalSplit::new(&targets, &config);
    let mut start = 0usize;
    for &end in &idx {
        let batch: Vec<EScenario> = pool[start..end].to_vec();
        start = end;
        let receipt = store.ingest(batch);
        assert!(!receipt.rebuilt, "time-ordered batches must splice");
        live.absorb(&store);
    }

    assert_eq!(store.len(), full_store.len());
    let actual = live.output(&store);
    assert_eq!(
        actual, expected,
        "delta-updated split must equal from-scratch rebuild"
    );
    assert_eq!(live.is_fully_split(), expected.fully_split());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary worlds, arbitrary batch boundaries, with and without
    /// an examined-scenario cap.
    #[test]
    fn incremental_split_equals_rebuild(
        seed in 0u64..1000,
        cells in 2usize..5,
        times in 4u64..14,
        people in 4u64..14,
        n_targets in 2u64..8,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
        cap_raw in 0usize..26,
    ) {
        let pool = scenario_pool(seed, cells, times, people);
        let cap = (cap_raw > 0).then_some(cap_raw);
        assert_delta_equivalence(pool, &[cut_a, cut_b], n_targets, cap);
    }
}

/// One batch per scenario — the finest-grained streaming schedule.
#[test]
fn scenario_at_a_time_streaming_equals_rebuild() {
    let pool = scenario_pool(7, 3, 10, 10);
    let cuts: Vec<f64> = (0..pool.len())
        .map(|i| i as f64 / pool.len() as f64)
        .collect();
    assert_delta_equivalence(pool, &cuts, 6, None);
}

/// Once fully split, further absorbs must be no-ops that keep
/// equivalence (the from-scratch run stops at the same scenario).
#[test]
fn absorb_after_full_split_is_a_noop() {
    let targets: BTreeSet<Eid> = (0..3).map(Eid::from_u64).collect();
    let config = chrono_config(None);
    let pool = scenario_pool(3, 3, 8, 8);
    let full_store = EScenarioStore::from_scenarios(pool.clone());
    let expected = split_ideal(&full_store, &targets, &config);

    let half = pool.len() / 2;
    let mut store = EScenarioStore::from_scenarios(pool[..half].to_vec());
    let mut live = IncrementalSplit::new(&targets, &config);
    live.absorb(&store);
    let was_fully_split = live.is_fully_split();
    store.ingest(pool[half..].to_vec());
    let stats = live.absorb(&store);
    if was_fully_split {
        assert_eq!(stats.scenarios_absorbed, 0, "fully split: no more work");
    }
    assert_eq!(live.output(&store), expected);
}

/// The examined cap is honoured across absorb calls exactly like one
/// continuous run.
#[test]
fn cap_spans_absorb_calls() {
    let targets: BTreeSet<Eid> = (0..6).map(Eid::from_u64).collect();
    let config = chrono_config(Some(4));
    let pool = scenario_pool(11, 3, 10, 10);
    let full_store = EScenarioStore::from_scenarios(pool.clone());
    let expected = split_ideal(&full_store, &targets, &config);

    let mut store = EScenarioStore::from_scenarios(Vec::new());
    let mut live = IncrementalSplit::new(&targets, &config);
    for chunk in pool.chunks(2) {
        store.ingest(chunk.to_vec());
        live.absorb(&store);
    }
    assert!(live.scenarios_examined() <= 4);
    assert_eq!(live.output(&store), expected);
}
