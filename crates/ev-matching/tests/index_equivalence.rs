//! Certifies the inverted-index / cache rewrite against the frozen
//! scan-based reference implementations, and pins the Theorem 4.2/4.4
//! scenario-count bounds.
//!
//! The contract under test: index-backed `split_ideal`,
//! `parallel_split` and cached `filter_vids` must produce **identical**
//! outputs (`==` on every field, including float scores and list
//! orders) to their pre-index twins, across strategies and seeds.

use ev_core::feature::FeatureVector;
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_mapreduce::{ClusterConfig, MapReduce};
use ev_matching::parallel::{parallel_split, parallel_split_scan, ParallelSplitConfig};
use ev_matching::setsplit::{
    reference, split_ideal, SelectionStrategy, SetSplitConfig, SplitOutput,
};
use ev_matching::vfilter::{filter_vids, filter_vids_uncached, VFilterConfig};
use ev_store::{EScenarioStore, VideoStore};
use ev_vision::cost::CostModel;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// A random E/V world: `people` persons wander a `cells`-cell corridor
/// for `times` steps; each scenario holds a random cohort and the
/// matching footage (VID = EID number, one-hot-ish features).
fn random_world(seed: u64, cells: usize, times: u64, people: u64) -> (EScenarioStore, VideoStore) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut es = Vec::new();
    let mut vs = Vec::new();
    for t in 0..times {
        for c in 0..cells {
            let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
            let mut v = VScenario::new(CellId::new(c), Timestamp::new(t));
            for p in 0..people {
                if rng.gen_bool(1.0 / cells as f64) {
                    e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                    let mut f = vec![0.05; people as usize];
                    f[p as usize] = 0.9 + rng.gen_range(0.0..0.05);
                    v.push(Detection {
                        vid: Vid::new(p),
                        feature: FeatureVector::new(f).unwrap(),
                    });
                }
            }
            if !e.is_empty() {
                es.push(e);
                vs.push(v);
            }
        }
    }
    (
        EScenarioStore::from_scenarios(es),
        VideoStore::new(vs, CostModel::free()),
    )
}

fn targets(n: u64) -> BTreeSet<Eid> {
    (0..n).map(Eid::from_u64).collect()
}

fn strategies() -> Vec<SelectionStrategy> {
    vec![
        SelectionStrategy::Chronological,
        SelectionStrategy::RandomTime { seed: 1 },
        SelectionStrategy::RandomTime { seed: 7 },
        SelectionStrategy::GreedyBalanced,
    ]
}

#[test]
fn split_ideal_is_identical_to_the_scan_reference() {
    for world_seed in [1, 2, 3] {
        let (store, _) = random_world(world_seed, 4, 12, 16);
        for strategy in strategies() {
            for max_scenarios in [None, Some(5)] {
                let cfg = SetSplitConfig {
                    strategy,
                    max_scenarios,
                    min_list_len: 3,
                };
                let indexed = split_ideal(&store, &targets(16), &cfg);
                let scanned = reference::split_ideal_scan(&store, &targets(16), &cfg);
                assert_eq!(
                    indexed, scanned,
                    "divergence: world {world_seed}, {strategy:?}, cap {max_scenarios:?}"
                );
            }
        }
    }
}

#[test]
fn split_ideal_equivalence_covers_missing_and_inseparable_eids() {
    // EIDs 30/31 never appear; 0 and 1 always co-occur.
    let mut es = Vec::new();
    for t in 0..6u64 {
        let mut e = EScenario::new(CellId::new(0), Timestamp::new(t));
        e.insert(Eid::from_u64(0), ZoneAttr::Inclusive);
        e.insert(Eid::from_u64(1), ZoneAttr::Inclusive);
        e.insert(Eid::from_u64(2 + t % 3), ZoneAttr::Inclusive);
        es.push(e);
    }
    let store = EScenarioStore::from_scenarios(es);
    let t: BTreeSet<Eid> = [0, 1, 2, 3, 30, 31]
        .iter()
        .map(|&p| Eid::from_u64(p))
        .collect();
    for strategy in strategies() {
        let cfg = SetSplitConfig {
            strategy,
            max_scenarios: None,
            min_list_len: 2,
        };
        let indexed = split_ideal(&store, &t, &cfg);
        let scanned = reference::split_ideal_scan(&store, &t, &cfg);
        assert_eq!(indexed, scanned, "divergence under {strategy:?}");
        assert!(!indexed.fully_split(), "0 and 1 are inseparable");
    }
}

#[test]
fn parallel_split_is_identical_to_its_scan_twin() {
    let engine = MapReduce::new(ClusterConfig {
        workers: 4,
        split_size: 2,
        reduce_partitions: 3,
        ..ClusterConfig::default()
    });
    for world_seed in [1, 2] {
        let (store, _) = random_world(world_seed, 3, 10, 12);
        for split_seed in [0, 5] {
            let cfg = ParallelSplitConfig {
                seed: split_seed,
                max_iterations: None,
            };
            let indexed = parallel_split(&engine, &store, &targets(12), &cfg).unwrap();
            let scanned = parallel_split_scan(&engine, &store, &targets(12), &cfg).unwrap();
            assert_eq!(
                indexed, scanned,
                "divergence: world {world_seed}, seed {split_seed}"
            );
        }
    }
}

#[test]
fn cached_vfilter_is_identical_to_the_uncached_reference() {
    for world_seed in [1, 2, 3] {
        let (store, video) = random_world(world_seed, 4, 12, 16);
        let split = split_ideal(&store, &targets(16), &SetSplitConfig::default());
        for exclusion in [true, false] {
            let cfg = VFilterConfig {
                exclusion,
                ..VFilterConfig::default()
            };
            video.reset_usage();
            let cached = filter_vids(&split.lists, &video, &cfg);
            video.reset_usage();
            let uncached = filter_vids_uncached(&split.lists, &video, &cfg);
            assert_eq!(
                cached, uncached,
                "divergence: world {world_seed}, exclusion {exclusion}"
            );
        }
    }
}

/// A store of "bit" scenarios over `2^k` targets: scenario `b` holds the
/// EIDs whose `b`-th bit is set. Fully splits with exactly `k` recorded
/// scenarios — Theorem 4.4's `log n` lower bound, achieved.
fn bit_store(k: u32) -> EScenarioStore {
    let n = 1u64 << k;
    let scenarios = (0..k)
        .map(|b| {
            let mut e = EScenario::new(CellId::new(b as usize), Timestamp::new(u64::from(b)));
            for p in (0..n).filter(|p| p & (1 << b) != 0) {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
            }
            e
        })
        .collect();
    EScenarioStore::from_scenarios(scenarios)
}

/// A "chain" store over `n` targets: scenario `i` holds EIDs `0..=i`.
/// Every scenario carves off exactly one EID — Theorem 4.2's `n - 1`
/// upper bound, achieved.
fn chain_store(n: u64) -> EScenarioStore {
    let scenarios = (0..n - 1)
        .map(|i| {
            let mut e = EScenario::new(CellId::new(0), Timestamp::new(i));
            for p in 0..=i {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
            }
            e
        })
        .collect();
    EScenarioStore::from_scenarios(scenarios)
}

fn fully_split_count(store: &EScenarioStore, n: u64, strategy: SelectionStrategy) -> SplitOutput {
    let out = split_ideal(
        store,
        &targets(n),
        &SetSplitConfig {
            strategy,
            max_scenarios: None,
            min_list_len: 0,
        },
    );
    assert!(out.fully_split(), "store must fully split {n} targets");
    out
}

#[test]
fn theorem_bounds_are_tight_at_both_ends() {
    for k in [2u32, 3, 4, 5] {
        let n = 1u64 << k;
        let best = fully_split_count(&bit_store(k), n, SelectionStrategy::Chronological);
        assert_eq!(
            best.recorded.len(),
            k as usize,
            "bit store: exactly log2(n) scenarios"
        );
        let worst = fully_split_count(&chain_store(n), n, SelectionStrategy::Chronological);
        assert_eq!(
            worst.recorded.len(),
            (n - 1) as usize,
            "chain store: exactly n - 1 scenarios"
        );
    }
}

proptest! {
    /// Theorem 4.2 / 4.4: whenever splitting fully distinguishes `n`
    /// targets, `ceil(log2 n) <= #recorded <= n - 1`.
    #[test]
    fn fully_split_recorded_counts_respect_both_bounds(
        world_seed in 0u64..50,
        greedy in any::<bool>(),
    ) {
        let n = 12u64;
        let (store, _) = random_world(world_seed, 3, 16, n);
        let strategy = if greedy {
            SelectionStrategy::GreedyBalanced
        } else {
            SelectionStrategy::Chronological
        };
        let out = split_ideal(
            &store,
            &targets(n),
            &SetSplitConfig { strategy, max_scenarios: None, min_list_len: 0 },
        );
        prop_assert!(out.recorded.len() < n as usize, "upper bound n - 1");
        if out.fully_split() {
            let log_n = (n as f64).log2().ceil() as usize;
            prop_assert!(
                out.recorded.len() >= log_n,
                "lower bound log2(n): {} < {log_n}",
                out.recorded.len()
            );
        }
    }

    /// The index/scan equivalence holds for arbitrary generated worlds,
    /// not just the hand-picked ones.
    #[test]
    fn split_equivalence_holds_for_arbitrary_worlds(
        world_seed in 0u64..30,
        strategy_pick in 0usize..4,
    ) {
        let (store, _) = random_world(world_seed, 3, 8, 10);
        let strategy = strategies()[strategy_pick];
        let cfg = SetSplitConfig { strategy, max_scenarios: None, min_list_len: 3 };
        let indexed = split_ideal(&store, &targets(10), &cfg);
        let scanned = reference::split_ideal_scan(&store, &targets(10), &cfg);
        prop_assert_eq!(indexed, scanned);
    }
}
