//! The DAG pipeline's contract: its [`MatchReport`] is byte-identical
//! (timings aside) to the MapReduce and sharded paths at every thread
//! count, and stays byte-identical under injected worker loss and
//! cache pressure — with only the lost partitions recomputed, never the
//! whole job (ISSUE 10's fault-recovery acceptance test).

use ev_core::feature::FeatureVector;
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
use ev_core::time::Timestamp;
use ev_mapreduce::{ClusterConfig, DagConfig, FaultPlan, MapReduce};
use ev_matching::dagflow::dag_match;
use ev_matching::parallel::{parallel_match, ParallelSplitConfig};
use ev_matching::sharded::sharded_match;
use ev_matching::vfilter::VFilterConfig;
use ev_matching::MatchReport;
use ev_store::{EScenarioStore, VideoStore};
use ev_telemetry::{names, Telemetry, TelemetryLevel};
use ev_vision::cost::CostModel;
use std::collections::BTreeSet;

const PEOPLE: u64 = 12;
const TIMES: u64 = 5;

/// 12 people distributed over 5 timestamps × 2 cells by the bits of
/// their id, so set splitting needs several effective rounds. Fresh
/// stores per run: the video store's extraction cache is stateful and
/// must not leak between compared runs.
fn world() -> (EScenarioStore, VideoStore) {
    let mut es = Vec::new();
    let mut vs = Vec::new();
    for t in 0..TIMES {
        for c in 0..2u64 {
            let mut e = EScenario::new(CellId::new(c as usize), Timestamp::new(t));
            let mut v = VScenario::new(CellId::new(c as usize), Timestamp::new(t));
            for p in (0..PEOPLE).filter(|p| (p >> t) & 1 == c) {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; PEOPLE as usize];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            if !e.is_empty() {
                es.push(e);
                vs.push(v);
            }
        }
    }
    (
        EScenarioStore::from_scenarios(es),
        VideoStore::new(vs, CostModel::free()),
    )
}

fn targets() -> BTreeSet<Eid> {
    (0..PEOPLE).map(Eid::from_u64).collect()
}

fn split_config() -> ParallelSplitConfig {
    ParallelSplitConfig {
        seed: 7,
        max_iterations: None,
    }
}

fn run_dag(config: &DagConfig, telemetry: &Telemetry) -> MatchReport {
    let (store, video) = world();
    dag_match(
        config,
        &store,
        &video,
        &targets(),
        &split_config(),
        &VFilterConfig::default(),
        telemetry,
    )
    .expect("dag pipeline")
}

fn assert_reports_equal(a: &MatchReport, b: &MatchReport, what: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{what}: outcomes");
    assert_eq!(a.lists, b.lists, "{what}: lists");
    assert_eq!(
        a.selected_scenarios, b.selected_scenarios,
        "{what}: selected scenarios"
    );
    assert_eq!(a.rounds, b.rounds, "{what}: rounds");
}

#[test]
fn dag_report_is_byte_identical_across_thread_counts() {
    let reference = run_dag(&DagConfig::new(1), Telemetry::disabled());
    assert!(
        reference.outcomes.iter().all(|o| o.vid.is_some()),
        "the fixture is separable; everyone must be matched"
    );
    for threads in [2, 4] {
        let report = run_dag(&DagConfig::new(threads), Telemetry::disabled());
        assert_reports_equal(&report, &reference, &format!("threads={threads}"));
    }
}

#[test]
fn dag_report_matches_the_mapreduce_and_sharded_paths() {
    let dag = run_dag(&DagConfig::new(2), Telemetry::disabled());

    // The sharded/DAG paths pin split_size=8 / reduce_partitions=4; use
    // the same geometry for the engine reference.
    let (store, video) = world();
    let engine = MapReduce::new(ClusterConfig {
        workers: 2,
        split_size: 8,
        reduce_partitions: 4,
        ..ClusterConfig::default()
    });
    let mapreduce = parallel_match(
        &engine,
        &store,
        &video,
        &targets(),
        &split_config(),
        &VFilterConfig::default(),
    )
    .expect("mapreduce pipeline");
    assert_reports_equal(&dag, &mapreduce, "vs mapreduce");

    let (store, video) = world();
    let sharded = sharded_match(
        2,
        &store,
        &video,
        &targets(),
        &split_config(),
        &VFilterConfig::default(),
        Telemetry::disabled(),
    )
    .expect("sharded pipeline");
    assert_reports_equal(&dag, &sharded, "vs sharded");
}

/// Injected worker panics lose partitions mid-run; lineage must retry
/// exactly the lost partitions (tasks = clean + retries + recomputes)
/// and the final report must not change.
#[test]
fn worker_loss_recomputes_only_lost_partitions() {
    let clean_tel = Telemetry::new(TelemetryLevel::Counters);
    let reference = run_dag(&DagConfig::new(2), &clean_tel);
    let clean_tasks = clean_tel.registry().counter(names::DAG_TASKS_TOTAL).get();
    assert!(clean_tasks > 0, "the run is observable");
    assert_eq!(
        clean_tel.registry().counter(names::DAG_TASK_RETRIES).get(),
        0,
        "no retries without faults"
    );

    let faulty_tel = Telemetry::new(TelemetryLevel::Counters);
    let faulty = run_dag(
        &DagConfig {
            max_attempts: 24,
            faults: FaultPlan {
                task_failure_rate: 0.25,
                seed: 9,
                ..FaultPlan::default()
            },
            ..DagConfig::new(2)
        },
        &faulty_tel,
    );
    assert_reports_equal(&faulty, &reference, "after injected worker loss");

    let registry = faulty_tel.registry();
    let tasks = registry.counter(names::DAG_TASKS_TOTAL).get();
    let retries = registry.counter(names::DAG_TASK_RETRIES).get();
    let recomputed = registry.counter(names::DAG_RECOMPUTED_PARTITIONS).get();
    assert!(retries > 0, "a 25% failure rate must lose partitions");
    assert_eq!(
        tasks,
        clean_tasks + retries + recomputed,
        "only lost partitions reran — untouched partitions were not resubmitted"
    );
}

/// Cache pressure evicts partitions that later turn out to be needed;
/// the scheduler must recompute them from lineage without changing the
/// report.
#[test]
fn cache_pressure_recomputes_from_lineage_without_changing_the_report() {
    let reference = run_dag(&DagConfig::new(2), Telemetry::disabled());
    let tel = Telemetry::new(TelemetryLevel::Counters);
    let squeezed = run_dag(
        &DagConfig {
            cache_capacity: Some(2),
            ..DagConfig::new(2)
        },
        &tel,
    );
    assert_reports_equal(&squeezed, &reference, "under cache pressure");
    assert!(
        tel.registry().counter(names::DAG_CACHE_EVICTIONS).get() > 0,
        "capacity 2 must force evictions"
    );
}
