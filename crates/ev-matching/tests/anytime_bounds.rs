//! Soundness of the anytime matcher's partial results
//! (`DESIGN.md §8`): across randomized corpora, knobs and metrics,
//!
//! * `converged == true` ⇒ the early-terminated VID equals the
//!   full-scan VID,
//! * otherwise (and always) the vote-share interval brackets the exact
//!   winner's share,
//! * a larger scoring budget never widens the interval,
//! * and the interval degenerates to the exact share at convergence
//!   with full settlement.

use ev_core::feature::{FeatureVector, Metric};
use ev_core::ids::{Eid, Vid};
use ev_core::region::CellId;
use ev_core::scenario::{Detection, ScenarioId, VScenario};
use ev_core::time::Timestamp;
use ev_matching::anytime::{partial_filter_one, AnytimeConfig};
use ev_matching::vfilter::{filter_one, VFilterConfig};
use ev_store::VideoStore;
use ev_vision::cost::CostModel;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

const EPS: f64 = 1e-12;

/// A random V-world: `people` persons with clustered appearances walk
/// through `scenarios` galleries; every person appears in each scenario
/// with probability `presence`. Returns the store and the full list.
fn random_world(
    seed: u64,
    people: u64,
    scenarios: usize,
    presence: f64,
) -> (VideoStore, Vec<ScenarioId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dim = 3;
    let anchors: Vec<Vec<f64>> = (0..people)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let mut vs = Vec::new();
    let mut list = Vec::new();
    for t in 0..scenarios {
        let mut v = VScenario::new(CellId::new(0), Timestamp::new(t as u64));
        for p in 0..people {
            if rng.gen_bool(presence) {
                let f: Vec<f64> = anchors[p as usize]
                    .iter()
                    .map(|&a| a + rng.gen_range(-0.05..0.05))
                    .collect();
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::from_clamped(f),
                });
            }
        }
        list.push(ScenarioId::new(Timestamp::new(t as u64), CellId::new(0)));
        vs.push(v);
    }
    (VideoStore::new(vs, CostModel::free()), list)
}

fn metric_of(pick: usize) -> Metric {
    [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine][pick % 3]
}

proptest! {
    /// The headline soundness contract of `PartialMatchOutcome`.
    #[test]
    fn partial_bounds_are_sound(
        seed in 0u64..60,
        people in 2u64..6,
        scenarios in 1usize..9,
        metric_pick in 0usize..3,
        confidence in 0.0f64..1.0,
        budget_raw in 0usize..11,
    ) {
        // 0 means "no budget"; n > 0 means a budget of n - 1 scenarios.
        let budget = budget_raw.checked_sub(1);
        let (video, list) = random_world(seed, people, scenarios, 0.7);
        let exact_cfg = VFilterConfig {
            metric: metric_of(metric_pick),
            ..VFilterConfig::default()
        };
        let exact = filter_one(
            Eid::from_u64(1), &list, &video, &exact_cfg, &BTreeSet::new(),
        );
        let anytime_cfg = VFilterConfig {
            anytime: Some(AnytimeConfig {
                confidence,
                budget_scenarios: budget,
            }),
            ..exact_cfg
        };
        let partial = partial_filter_one(
            Eid::from_u64(1), &list, &video, &anytime_cfg, &BTreeSet::new(),
        );

        // Interval shape.
        prop_assert!(partial.vote_share_low <= partial.vote_share_high + EPS);
        prop_assert!(partial.vote_share_low >= -EPS);
        prop_assert!(partial.vote_share_high <= 1.0 + EPS);
        prop_assert!(partial.scenarios_scored <= partial.scenarios_total);
        prop_assert!(!partial.outcome.vote_share.is_nan());

        // The interval brackets the exact winner's share, converged or
        // not (for a NoEvidence exact outcome the share is 0 and the
        // interval is degenerate at 0).
        prop_assert!(
            partial.vote_share_low <= exact.vote_share + EPS,
            "low {} > exact {}", partial.vote_share_low, exact.vote_share
        );
        prop_assert!(
            partial.vote_share_high >= exact.vote_share - EPS,
            "high {} < exact {}", partial.vote_share_high, exact.vote_share
        );

        // Early termination never changes a converged answer.
        if partial.converged {
            prop_assert_eq!(
                partial.vid, exact.vid,
                "converged but diverged from the full scan"
            );
            // Full settlement at convergence pins the share exactly.
            if partial.scenarios_scored == partial.scenarios_total {
                prop_assert!((partial.vote_share_low - exact.vote_share).abs() <= EPS);
                prop_assert!((partial.vote_share_high - exact.vote_share).abs() <= EPS);
            }
        }
    }

    /// More budget can only tighten (never widen) the interval: runs
    /// are identical until the smaller budget stalls.
    #[test]
    fn budget_tightens_monotonically(
        seed in 0u64..40,
        people in 2u64..5,
        scenarios in 2usize..8,
        confidence in 0.0f64..1.0,
    ) {
        let (video, list) = random_world(seed, people, scenarios, 0.7);
        let mut last_width = f64::INFINITY;
        for budget in 0..=scenarios {
            let cfg = VFilterConfig {
                anytime: Some(AnytimeConfig {
                    confidence,
                    budget_scenarios: Some(budget),
                }),
                ..VFilterConfig::default()
            };
            let partial = partial_filter_one(
                Eid::from_u64(1), &list, &video, &cfg, &BTreeSet::new(),
            );
            let width = partial.vote_share_high - partial.vote_share_low;
            prop_assert!(
                width <= last_width + EPS,
                "budget {budget} widened the interval: {width} > {last_width}"
            );
            last_width = width;
        }
    }

    /// Delegation parity: a non-approximate anytime config must leave
    /// `filter_one` bit-identical to a config with no anytime at all,
    /// and `--confidence 1.0` therefore costs nothing in fidelity.
    #[test]
    fn confidence_one_is_exactly_the_exact_path(
        seed in 0u64..40,
        people in 2u64..5,
        scenarios in 1usize..8,
    ) {
        let (video, list) = random_world(seed, people, scenarios, 0.7);
        let exact = filter_one(
            Eid::from_u64(1), &list, &video,
            &VFilterConfig::default(), &BTreeSet::new(),
        );
        let routed = filter_one(
            Eid::from_u64(1), &list, &video,
            &VFilterConfig {
                anytime: Some(AnytimeConfig::with_confidence(1.0)),
                ..VFilterConfig::default()
            },
            &BTreeSet::new(),
        );
        prop_assert_eq!(exact, routed);
    }
}
