//! EID set splitting for the ideal setting (paper Algorithm 1).
//!
//! Starting from the trivial partition `{Ueid}`, E-Scenarios are selected
//! one batch at a time and applied as splitters
//! ([`EidPartition::split_by`]); *effective* scenarios (those that change
//! the partition) are recorded. The loop ends when every requested EID is
//! alone in its block or the scenario pool is exhausted.
//!
//! The scenario list attached to each EID — the input to VID filtering —
//! is the set of recorded scenarios that *contain* the EID. An EID whose
//! blocks were always carved off by absence can end with an empty list;
//! such EIDs get an *anchor* scenario (any scenario containing them) so
//! the V stage has footage to look at.
//!
//! # Index-backed hot path
//!
//! All strategies consume the store through its inverted index
//! ([`ev_store::ScenarioIndex`]): the per-scenario target intersections
//! are materialized once from the targets' posting lists, and the
//! quadratic [`SelectionStrategy::GreedyBalanced`] re-scan is replaced by
//! a lazy-greedy max-heap over cached split gains, invalidated only for
//! scenarios sharing an EID with a block the last splitter touched
//! (gains are non-increasing under refinement, so stale heap entries are
//! safe to recompute on pop). The selection sequence — and therefore the
//! whole [`SplitOutput`] — is identical to the scan-based reference
//! implementation kept in [`reference`](mod@reference).

use crate::types::ScenarioList;
use ev_core::ids::Eid;
use ev_core::partition::EidPartition;
use ev_core::scenario::{EScenario, ScenarioId};
use ev_store::EScenarioStore;
use ev_telemetry::{names, Telemetry};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// How the splitting loop picks the next scenarios to try.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Pick a random timestamp and process every scenario snapshotted
    /// there, repeating with the remaining timestamps — the strategy of
    /// the parallel Algorithm 3's preprocess step.
    RandomTime {
        /// RNG seed for the timestamp draws.
        seed: u64,
    },
    /// Process scenarios in (time, cell) order.
    Chronological,
    /// At every step scan the unused scenarios and apply the one with the
    /// highest split gain (sum over blocks of `min(|A∩C|, |A\C|)`).
    /// Quadratic — intended for the selection-order ablation only.
    GreedyBalanced,
}

/// Configuration of a set-splitting run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetSplitConfig {
    /// Scenario selection order.
    pub strategy: SelectionStrategy,
    /// Hard cap on examined scenarios (`None` = no cap).
    pub max_scenarios: Option<usize>,
    /// Pad every EID's scenario list up to this length with additional
    /// scenarios containing it. Splitting alone can leave very short
    /// lists — fine for *distinguishing within the matched cohort* but
    /// fragile for the V-stage majority vote, where an unmatched
    /// bystander sharing both of a two-scenario list ties it. This is why
    /// the paper's SS uses "about one more scenario for each EID than
    /// EDP" (Fig. 7).
    pub min_list_len: usize,
}

impl Default for SetSplitConfig {
    fn default() -> Self {
        SetSplitConfig {
            strategy: SelectionStrategy::RandomTime { seed: 0 },
            max_scenarios: None,
            min_list_len: 3,
        }
    }
}

/// The result of EID set splitting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitOutput {
    /// Effective scenarios, in the order they were recorded.
    pub recorded: Vec<ScenarioId>,
    /// Per-EID scenario lists (recorded scenarios containing the EID,
    /// plus an anchor when that set came out empty).
    pub lists: BTreeMap<Eid, ScenarioList>,
    /// The final partition (fully split unless the pool ran dry).
    pub partition: EidPartition,
    /// Scenarios examined, effective or not.
    pub scenarios_examined: usize,
}

impl SplitOutput {
    /// Whether every requested EID was distinguished.
    #[must_use]
    pub fn fully_split(&self) -> bool {
        self.partition.is_fully_split()
    }

    /// Every distinct scenario the V stage will have to process (recorded
    /// splitters plus anchors) — the paper's "number of selected
    /// scenarios".
    #[must_use]
    pub fn selected(&self) -> BTreeSet<ScenarioId> {
        let mut set: BTreeSet<ScenarioId> = self.recorded.iter().copied().collect();
        for list in self.lists.values() {
            set.extend(list.iter().copied());
        }
        set
    }
}

/// Applies one candidate intersection as a splitter, recording it and
/// extending the member lists when it was effective. Shared with the
/// streaming delta-update in [`crate::incremental`], which must refine
/// blocks with byte-identical semantics.
pub(crate) fn apply_candidate(
    id: ScenarioId,
    c: &BTreeSet<Eid>,
    partition: &mut EidPartition,
    recorded: &mut Vec<ScenarioId>,
    lists: &mut BTreeMap<Eid, ScenarioList>,
) {
    if c.is_empty() {
        return;
    }
    if partition.split_by(c).effective {
        recorded.push(id);
        for &eid in c {
            if let Some(list) = lists.get_mut(&eid) {
                list.push(id);
            }
        }
    }
}

/// Materializes each scenario's intersection with the targets by merging
/// the targets' posting lists — one pass over `O(Σ_target |postings|)`
/// records, touching only scenarios that contain at least one target.
pub(crate) fn candidate_intersections(
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
) -> BTreeMap<ScenarioId, BTreeSet<Eid>> {
    let index = store.index();
    let mut candidates: BTreeMap<ScenarioId, BTreeSet<Eid>> = BTreeMap::new();
    for &eid in targets {
        for &id in index.postings(eid) {
            candidates.entry(id).or_default().insert(eid);
        }
    }
    candidates
}

/// Runs ideal-setting EID set splitting over `store` for the requested
/// `targets`, answering all membership questions from the store's
/// inverted index. Produces output identical to
/// [`reference::split_ideal_scan`].
///
/// EIDs in `targets` that never appear in any scenario simply remain
/// grouped (they cannot be distinguished or matched); their lists come out
/// empty.
#[must_use]
pub fn split_ideal(
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    config: &SetSplitConfig,
) -> SplitOutput {
    split_ideal_instrumented(store, targets, config, Telemetry::disabled())
}

/// [`split_ideal`] with telemetry: records scenarios examined, effective
/// (recorded) scenarios, splitting rounds, final block count and — for
/// the greedy strategy, where gains are already computed — a per-round
/// splitter-gain histogram plus gain-cache invalidation counts. With a
/// disabled handle this is exactly `split_ideal`.
#[must_use]
pub fn split_ideal_instrumented(
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    config: &SetSplitConfig,
    tel: &Telemetry,
) -> SplitOutput {
    let mut split_span = tel.span("setsplit", "stage");
    let mut partition = EidPartition::new(targets.iter().copied());
    let mut recorded: Vec<ScenarioId> = Vec::new();
    let mut lists: BTreeMap<Eid, ScenarioList> = targets.iter().map(|&e| (e, Vec::new())).collect();
    let mut examined = 0usize;
    let mut rounds = 0u64;
    let cap = config.max_scenarios.unwrap_or(usize::MAX);
    let candidates = candidate_intersections(store, targets);
    // Sequential strategies never compute split gains, so the gain
    // histogram there is a profiling-only (full level) extra.
    let full_gain_hist = tel
        .tracing_on()
        .then(|| tel.registry().histogram(names::SETSPLIT_SPLITTER_GAIN));

    match config.strategy {
        SelectionStrategy::Chronological => {
            for scenario in store.iter() {
                if partition.is_fully_split() || examined >= cap {
                    break;
                }
                examined += 1;
                if let Some(c) = candidates.get(&scenario.id()) {
                    rounds += 1;
                    if let Some(hist) = &full_gain_hist {
                        hist.record(split_gain(&partition, c));
                    }
                    apply_candidate(scenario.id(), c, &mut partition, &mut recorded, &mut lists);
                } else {
                    store.index().note_scan_avoided();
                }
            }
        }
        SelectionStrategy::RandomTime { seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut times: Vec<_> = store.times().collect();
            times.shuffle(&mut rng);
            'outer: for t in times {
                for scenario in store.at_time(t) {
                    if partition.is_fully_split() || examined >= cap {
                        break 'outer;
                    }
                    examined += 1;
                    if let Some(c) = candidates.get(&scenario.id()) {
                        rounds += 1;
                        if let Some(hist) = &full_gain_hist {
                            hist.record(split_gain(&partition, c));
                        }
                        apply_candidate(
                            scenario.id(),
                            c,
                            &mut partition,
                            &mut recorded,
                            &mut lists,
                        );
                    } else {
                        store.index().note_scan_avoided();
                    }
                }
            }
        }
        SelectionStrategy::GreedyBalanced => {
            greedy_balanced_indexed(
                store,
                &candidates,
                cap,
                &mut partition,
                &mut recorded,
                &mut lists,
                &mut examined,
                tel,
            );
            rounds = examined as u64;
        }
    }

    attach_anchors(store, &mut lists, false);
    let seed = match config.strategy {
        SelectionStrategy::RandomTime { seed } => seed,
        _ => 0,
    };
    extend_lists(store, &mut lists, config.min_list_len, seed, false, false);
    ensure_unique_against_universe(store, &mut lists, seed, false, false);
    if tel.counters_on() {
        let registry = tel.registry();
        registry
            .counter(names::SETSPLIT_SCENARIOS_EXAMINED)
            .add(examined as u64);
        registry
            .counter(names::SETSPLIT_RECORDED)
            .add(recorded.len() as u64);
        registry.counter(names::SETSPLIT_ROUNDS).add(rounds);
        registry
            .gauge(names::SETSPLIT_BLOCKS)
            .set(partition.block_count() as f64);
    }
    split_span.arg("examined", serde::Value::Int(examined as i128));
    split_span.arg("recorded", serde::Value::Int(recorded.len() as i128));
    drop(split_span);
    SplitOutput {
        recorded,
        lists,
        partition,
        scenarios_examined: examined,
    }
}

/// Incremental greedy selection: a max-heap over `(gain, smallest id)`
/// with a split-gain cache that is invalidated only for scenarios sharing
/// an EID with a block the last splitter touched.
///
/// Correctness: a partition refinement can only *decrease* a scenario's
/// split gain (`min` is superadditive: `min(a+c, b+d) >= min(a,b) +
/// min(c,d)`), so a popped heap entry whose gain is still current is the
/// true argmax — the same scenario the quadratic re-scan would pick,
/// including its smallest-id tie-break. Scenarios whose gain reaches 0
/// are dropped for good (it can never grow back).
#[allow(clippy::too_many_arguments)]
fn greedy_balanced_indexed(
    store: &EScenarioStore,
    candidates: &BTreeMap<ScenarioId, BTreeSet<Eid>>,
    cap: usize,
    partition: &mut EidPartition,
    recorded: &mut Vec<ScenarioId>,
    lists: &mut BTreeMap<Eid, ScenarioList>,
    examined: &mut usize,
    tel: &Telemetry,
) {
    let index = store.index();
    let gain_hist = tel
        .counters_on()
        .then(|| tel.registry().histogram(names::SETSPLIT_SPLITTER_GAIN));
    let mut invalidations = 0u64;
    // (gain, Reverse(id)) orders the heap by gain descending, then id
    // ascending — matching the scan's first-strictly-greater selection.
    let mut heap: BinaryHeap<(u64, Reverse<ScenarioId>)> = BinaryHeap::new();
    let mut gain_cache: BTreeMap<ScenarioId, u64> = BTreeMap::new();
    let mut dirty: BTreeSet<ScenarioId> = BTreeSet::new();
    for (&id, c) in candidates {
        let gain = split_gain(partition, c);
        if gain > 0 {
            gain_cache.insert(id, gain);
            heap.push((gain, Reverse(id)));
        }
    }

    while !partition.is_fully_split() && *examined < cap {
        // Lazily pop until a current, positive-gain entry surfaces.
        let best = loop {
            let Some((g, Reverse(id))) = heap.pop() else {
                break None;
            };
            let Some(&cached) = gain_cache.get(&id) else {
                continue; // already used or dropped
            };
            if dirty.remove(&id) {
                let gain = split_gain(partition, &candidates[&id]);
                if gain == 0 {
                    gain_cache.remove(&id);
                } else {
                    gain_cache.insert(id, gain);
                    heap.push((gain, Reverse(id)));
                }
                continue;
            }
            if g != cached {
                continue; // stale duplicate; a fresher entry exists
            }
            break Some((id, g));
        };
        let Some((id, gain)) = best else {
            break; // no scenario can improve the partition
        };
        if let Some(hist) = &gain_hist {
            hist.record(gain);
        }
        *examined += 1;
        let c = &candidates[&id];
        // EIDs of every block the splitter intersects: the only blocks —
        // and therefore the only gains — this split can change.
        let mut touched: BTreeSet<Eid> = BTreeSet::new();
        for &eid in c {
            if let Some(block) = partition.block_of(eid) {
                touched.extend(block.iter().copied());
            }
        }
        apply_candidate(id, c, partition, recorded, lists);
        gain_cache.remove(&id);
        for &eid in &touched {
            for &sid in index.postings(eid) {
                if gain_cache.contains_key(&sid) && dirty.insert(sid) {
                    invalidations += 1;
                }
            }
        }
    }
    if tel.counters_on() {
        tel.registry()
            .counter(names::SETSPLIT_GAIN_CACHE_INVALIDATIONS)
            .add(invalidations);
    }
}

/// Ensures each EID's list is *discriminating against the full EID
/// universe*: no other device-carrying person may co-occur in every
/// scenario of the list, otherwise that person's VID is a perfect
/// "shadow" that VID filtering cannot tell from the right one. Set
/// splitting alone only separates the *requested* EIDs from each other;
/// this pass extends lists (preferring scenarios already selected for
/// someone else) until the co-presence intersection over **all** EIDs is
/// the singleton `{eid}` — the same guarantee EDP's E-filtering gives —
/// or the pool runs dry. Pure E-stage work: no footage is touched.
pub(crate) fn ensure_unique_against_universe(
    store: &EScenarioStore,
    lists: &mut BTreeMap<Eid, ScenarioList>,
    seed: u64,
    inclusive_only: bool,
    scan: bool,
) {
    let mut selected: BTreeSet<ScenarioId> =
        lists.values().flat_map(|l| l.iter().copied()).collect();
    let eids: Vec<Eid> = lists.keys().copied().collect();
    for eid in eids {
        let list = lists.get_mut(&eid).expect("key from iteration");
        // Current co-presence intersection over the full universe.
        let mut common: Option<BTreeSet<Eid>> = None;
        for id in list.iter() {
            if let Some(s) = store.get(*id) {
                let eids: BTreeSet<Eid> = s.eids().collect();
                common = Some(match common {
                    None => eids,
                    Some(c) => c.intersection(&eids).copied().collect(),
                });
            }
        }
        let mut common = match common {
            Some(c) if c.len() > 1 => c,
            _ => continue, // already unique (or no usable footage at all)
        };
        let (mut reusable, mut fresh): (Vec<&EScenario>, Vec<&EScenario>) =
            containing_scenarios(store, eid, scan)
                .filter(|s| !inclusive_only || s.contains_inclusive(eid))
                .filter(|s| !list.contains(&s.id()))
                .partition(|s| selected.contains(&s.id()));
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ eid.as_u64().wrapping_mul(0x2545f4914f6cdd1d));
        reusable.shuffle(&mut rng);
        fresh.shuffle(&mut rng);
        for scenario in reusable.into_iter().chain(fresh) {
            if common.len() <= 1 {
                break;
            }
            let eids: BTreeSet<Eid> = scenario.eids().collect();
            let next: BTreeSet<Eid> = common.intersection(&eids).copied().collect();
            if next.len() < common.len() {
                list.push(scenario.id());
                selected.insert(scenario.id());
                common = next;
            }
        }
    }
}

/// Pads short scenario lists up to `min_len` with extra scenarios
/// containing each EID (inclusively, when `inclusive_only`), drawn in a
/// seeded random order so consecutive windows of the same dwell do not
/// dominate.
pub(crate) fn extend_lists(
    store: &EScenarioStore,
    lists: &mut BTreeMap<Eid, ScenarioList>,
    min_len: usize,
    seed: u64,
    inclusive_only: bool,
    scan: bool,
) {
    // Scenarios already selected for anyone: padding prefers these, so
    // one padded scenario serves several EIDs — the same reuse that makes
    // set splitting beat per-EID selection in the first place.
    let mut selected: BTreeSet<ScenarioId> =
        lists.values().flat_map(|l| l.iter().copied()).collect();
    for (&eid, list) in lists.iter_mut() {
        if list.len() >= min_len {
            continue;
        }
        let (mut reusable, mut fresh): (Vec<ScenarioId>, Vec<ScenarioId>) =
            containing_scenarios(store, eid, scan)
                .filter(|s| !inclusive_only || s.contains_inclusive(eid))
                .map(EScenario::id)
                .filter(|id| !list.contains(id))
                .partition(|id| selected.contains(id));
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ eid.as_u64().wrapping_mul(0x9e3779b97f4a7c15));
        reusable.shuffle(&mut rng);
        fresh.shuffle(&mut rng);
        let added: Vec<ScenarioId> = reusable
            .into_iter()
            .chain(fresh)
            .take(min_len - list.len())
            .collect();
        selected.extend(added.iter().copied());
        list.extend(added);
    }
}

/// Sum over blocks of `min(|A ∩ C|, |A \ C|)` — how much discriminating
/// work the scenario would do.
fn split_gain(partition: &EidPartition, c: &BTreeSet<Eid>) -> u64 {
    let mut gain = 0u64;
    for block in partition.blocks() {
        if block.len() < 2 {
            continue;
        }
        let inside = block.intersection(c).count();
        gain += inside.min(block.len() - inside) as u64;
    }
    gain
}

/// The scenarios containing `eid`, in store order, through either the
/// inverted index (`scan = false`) or a full store scan (`scan = true`,
/// for the [`reference`] paths). Both yield identical sequences; the
/// index path is `O(|postings|)` instead of `O(|store|)`.
fn containing_scenarios<'a>(
    store: &'a EScenarioStore,
    eid: Eid,
    scan: bool,
) -> Box<dyn Iterator<Item = &'a EScenario> + 'a> {
    if scan {
        Box::new(store.containing_scan(eid))
    } else {
        Box::new(store.containing(eid))
    }
}

/// Gives every empty-listed EID one anchor scenario (the first scenario in
/// store order containing it) so VID filtering has footage to inspect.
///
/// The index path reads each EID's first posting directly (postings are
/// in store order, so this is the same anchor the scan would find).
pub(crate) fn attach_anchors(
    store: &EScenarioStore,
    lists: &mut BTreeMap<Eid, ScenarioList>,
    scan: bool,
) {
    let empties: Vec<Eid> = lists
        .iter()
        .filter(|(_, l)| l.is_empty())
        .map(|(&e, _)| e)
        .collect();
    if empties.is_empty() {
        return;
    }
    if !scan {
        let index = store.index();
        for eid in empties {
            if let Some(&id) = index.postings(eid).first() {
                if let Some(list) = lists.get_mut(&eid) {
                    list.push(id);
                }
            }
        }
        return;
    }
    let mut pending: BTreeSet<Eid> = empties.into_iter().collect();
    for scenario in store.iter() {
        if pending.is_empty() {
            break;
        }
        let found: Vec<Eid> = scenario.eids().filter(|e| pending.contains(e)).collect();
        for eid in found {
            pending.remove(&eid);
            if let Some(list) = lists.get_mut(&eid) {
                list.push(scenario.id());
            }
        }
    }
}

/// Scan-based reference implementations, frozen from the pre-index code.
///
/// Every membership question here is answered by walking scenario
/// membership maps, exactly as the original implementation did. The
/// equivalence tests and the `index` benchmark compare these against the
/// index-backed hot paths and require byte-identical [`SplitOutput`]s.
pub mod reference {
    use super::*;

    /// The pre-index [`split_ideal`]: linear scans
    /// for candidate intersections and a full re-scan per greedy step.
    #[must_use]
    pub fn split_ideal_scan(
        store: &EScenarioStore,
        targets: &BTreeSet<Eid>,
        config: &SetSplitConfig,
    ) -> SplitOutput {
        let mut partition = EidPartition::new(targets.iter().copied());
        let mut recorded: Vec<ScenarioId> = Vec::new();
        let mut lists: BTreeMap<Eid, ScenarioList> =
            targets.iter().map(|&e| (e, Vec::new())).collect();
        let mut examined = 0usize;
        let cap = config.max_scenarios.unwrap_or(usize::MAX);

        let apply = |scenario: &EScenario,
                     partition: &mut EidPartition,
                     recorded: &mut Vec<ScenarioId>,
                     lists: &mut BTreeMap<Eid, ScenarioList>| {
            let c: BTreeSet<Eid> = scenario.eids().filter(|e| targets.contains(e)).collect();
            apply_candidate(scenario.id(), &c, partition, recorded, lists);
        };

        match config.strategy {
            SelectionStrategy::Chronological => {
                for scenario in store.iter() {
                    if partition.is_fully_split() || examined >= cap {
                        break;
                    }
                    examined += 1;
                    apply(scenario, &mut partition, &mut recorded, &mut lists);
                }
            }
            SelectionStrategy::RandomTime { seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut times: Vec<_> = store.times().collect();
                times.shuffle(&mut rng);
                'outer: for t in times {
                    for scenario in store.at_time(t) {
                        if partition.is_fully_split() || examined >= cap {
                            break 'outer;
                        }
                        examined += 1;
                        apply(scenario, &mut partition, &mut recorded, &mut lists);
                    }
                }
            }
            SelectionStrategy::GreedyBalanced => {
                let mut used: BTreeSet<ScenarioId> = BTreeSet::new();
                while !partition.is_fully_split() && examined < cap {
                    // Find the unused scenario with the best split gain.
                    let mut best: Option<(u64, ScenarioId)> = None;
                    for scenario in store.iter() {
                        if used.contains(&scenario.id()) {
                            continue;
                        }
                        let c: BTreeSet<Eid> =
                            scenario.eids().filter(|e| targets.contains(e)).collect();
                        if c.is_empty() {
                            continue;
                        }
                        let gain = split_gain(&partition, &c);
                        if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                            best = Some((gain, scenario.id()));
                        }
                    }
                    let Some((_, id)) = best else {
                        break; // no scenario can improve the partition
                    };
                    used.insert(id);
                    examined += 1;
                    if let Some(scenario) = store.get(id) {
                        apply(scenario, &mut partition, &mut recorded, &mut lists);
                    }
                }
            }
        }

        attach_anchors(store, &mut lists, true);
        let seed = match config.strategy {
            SelectionStrategy::RandomTime { seed } => seed,
            _ => 0,
        };
        extend_lists(store, &mut lists, config.min_list_len, seed, false, true);
        ensure_unique_against_universe(store, &mut lists, seed, false, true);
        SplitOutput {
            recorded,
            lists,
            partition,
            scenarios_examined: examined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::scenario::ZoneAttr;
    use ev_core::time::Timestamp;

    fn scenario(cell: usize, time: u64, eids: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        for &e in eids {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        s
    }

    fn targets(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    /// Four EIDs, binary-code scenarios: bit scenarios distinguish all.
    fn binary_store() -> EScenarioStore {
        EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[2, 3]), // high bit
            scenario(1, 1, &[1, 3]), // low bit
            scenario(2, 2, &[0, 1, 2, 3]),
        ])
    }

    #[test]
    fn chronological_split_distinguishes_all() {
        let store = binary_store();
        let out = split_ideal(
            &store,
            &targets(0..4),
            &SetSplitConfig {
                strategy: SelectionStrategy::Chronological,
                max_scenarios: None,
                min_list_len: 0,
            },
        );
        assert!(out.fully_split());
        assert_eq!(out.recorded.len(), 2, "the all-EIDs scenario is skipped");
        assert_eq!(
            out.scenarios_examined, 2,
            "fully split after two scenarios; the third is never touched"
        );
        // EID 3 appears in both recorded scenarios.
        assert_eq!(out.lists[&Eid::from_u64(3)].len(), 2);
        // EID 0 appears in neither -> it gets an anchor.
        assert_eq!(out.lists[&Eid::from_u64(0)].len(), 1);
        let anchor = out.lists[&Eid::from_u64(0)][0];
        assert_eq!(anchor.cell, CellId::new(2), "only scenario containing 0");
    }

    #[test]
    fn selected_includes_anchors() {
        let store = binary_store();
        let out = split_ideal(&store, &targets(0..4), &SetSplitConfig::default());
        let selected = out.selected();
        for list in out.lists.values() {
            for id in list {
                assert!(selected.contains(id));
            }
        }
        assert!(selected.len() >= out.recorded.len());
    }

    #[test]
    fn random_time_strategy_is_deterministic_per_seed() {
        let store = binary_store();
        let cfg = |seed| SetSplitConfig {
            strategy: SelectionStrategy::RandomTime { seed },
            max_scenarios: None,
            min_list_len: 0,
        };
        let a = split_ideal(&store, &targets(0..4), &cfg(1));
        let b = split_ideal(&store, &targets(0..4), &cfg(1));
        assert_eq!(a.recorded, b.recorded);
        assert!(a.fully_split());
    }

    #[test]
    fn greedy_prefers_balanced_splits() {
        // A lopsided scenario {0} vs a balanced one {0,1}: greedy must
        // take the balanced one first for 4 EIDs.
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[0]),
            scenario(1, 1, &[0, 1]),
            scenario(2, 2, &[1, 2]),
        ]);
        let out = split_ideal(
            &store,
            &targets(0..4),
            &SetSplitConfig {
                strategy: SelectionStrategy::GreedyBalanced,
                max_scenarios: None,
                min_list_len: 0,
            },
        );
        assert_eq!(
            out.recorded[0],
            ScenarioId::new(Timestamp::new(1), CellId::new(1)),
            "balanced splitter goes first"
        );
    }

    #[test]
    fn unsplittable_universe_stops_gracefully() {
        // EIDs 5 and 6 always co-occur: no scenario can separate them.
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[5, 6]),
            scenario(1, 1, &[5, 6, 7]),
        ]);
        let out = split_ideal(&store, &targets([5, 6, 7]), &SetSplitConfig::default());
        assert!(!out.fully_split());
        assert!(out.partition.is_distinguished(Eid::from_u64(7)));
        assert!(!out.partition.is_distinguished(Eid::from_u64(5)));
    }

    #[test]
    fn eid_absent_from_all_scenarios_keeps_empty_list() {
        let store = binary_store();
        let out = split_ideal(&store, &targets([0, 1, 99]), &SetSplitConfig::default());
        assert!(out.lists[&Eid::from_u64(99)].is_empty(), "no anchor exists");
    }

    #[test]
    fn max_scenarios_caps_work() {
        let store = binary_store();
        let out = split_ideal(
            &store,
            &targets(0..4),
            &SetSplitConfig {
                strategy: SelectionStrategy::Chronological,
                max_scenarios: Some(1),
                min_list_len: 0,
            },
        );
        assert_eq!(out.scenarios_examined, 1);
        assert!(!out.fully_split());
    }

    #[test]
    fn effectiveness_bound_of_theorem_4_2_holds() {
        // Against any store, the number of recorded scenarios is at most
        // n - 1 for n targets (each effective scenario adds >= 1 block).
        let scenarios: Vec<EScenario> = (0..40)
            .map(|i| {
                scenario(
                    i % 5,
                    i as u64,
                    &[(i as u64) % 7, (i as u64) % 11, (i as u64) % 13],
                )
            })
            .collect();
        let store = EScenarioStore::from_scenarios(scenarios);
        let n = 13;
        let out = split_ideal(&store, &targets(0..n), &SetSplitConfig::default());
        assert!(
            out.recorded.len() < (n as usize),
            "{} recorded for n={n}",
            out.recorded.len()
        );
    }

    #[test]
    fn scenario_reuse_one_scenario_serves_many_eids() {
        // One big scenario containing half the universe serves as one
        // splitter for all 4 of its EIDs at once.
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[0, 1, 2, 3]),
            scenario(1, 1, &[0, 1]),
            scenario(2, 2, &[0, 2]),
            scenario(3, 3, &[4, 5]),
            scenario(4, 4, &[4, 6]),
        ]);
        let out = split_ideal(
            &store,
            &targets(0..8),
            &SetSplitConfig {
                strategy: SelectionStrategy::Chronological,
                max_scenarios: None,
                min_list_len: 0,
            },
        );
        assert!(out.fully_split());
        // 5 recorded scenarios distinguish 8 EIDs: 0..3 from 4..7, then
        // pairwise.
        assert_eq!(out.recorded.len(), 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::scenario::ZoneAttr;
    use ev_core::time::Timestamp;
    use proptest::prelude::*;

    proptest! {
        /// For arbitrary scenario pools, the recorded count respects the
        /// Theorem 4.2 upper bound and the partition matches signature
        /// classes over the *recorded* scenarios only.
        #[test]
        fn recorded_scenarios_respect_upper_bound(
            pool in prop::collection::vec(
                prop::collection::btree_set(0u64..12, 0..8),
                1..25,
            ),
        ) {
            let scenarios: Vec<EScenario> = pool
                .iter()
                .enumerate()
                .map(|(i, eids)| {
                    let mut s = EScenario::new(
                        CellId::new(i % 4),
                        Timestamp::new(i as u64),
                    );
                    for &e in eids {
                        s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
                    }
                    s
                })
                .collect();
            let store = EScenarioStore::from_scenarios(scenarios);
            let targets: BTreeSet<Eid> = (0..12).map(Eid::from_u64).collect();
            let out = split_ideal(&store, &targets, &SetSplitConfig::default());
            prop_assert!(out.recorded.len() < targets.len());
            prop_assert!(out.partition.check_invariants());
            // Recorded scenarios reproduce the partition from scratch.
            let mut replay = ev_core::partition::EidPartition::new(
                targets.iter().copied(),
            );
            for id in &out.recorded {
                let c: BTreeSet<Eid> = store
                    .get(*id)
                    .unwrap()
                    .eids()
                    .filter(|e| targets.contains(e))
                    .collect();
                replay.split_by(&c);
            }
            prop_assert_eq!(replay.block_count(), out.partition.block_count());
        }
    }
}
