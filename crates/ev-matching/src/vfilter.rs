//! VID filtering: the V stage (paper §IV-B2).
//!
//! For each EID, the V-Scenarios corresponding to its selected E-Scenario
//! list are extracted (through the [`VideoStore`], which charges the
//! vision cost model and caches reused scenarios). Every VID observed in
//! those scenarios is a candidate; a candidate's score is the joint
//! membership probability `Π_S P(VID ∈ S)` with
//! `P(VID ∈ S) = max_i sim(VID, VID_i)` (paper Eq. 1 and §IV-B2). In
//! every scenario the highest-scoring present candidate is *chosen*; the
//! matched VID is the majority of those per-scenario choices — exactly
//! the accuracy criterion of paper §VI-B.
//!
//! Already-matched VIDs can be *excluded* from later candidacies ("VIDs
//! that have been already matched may help distinguishing those remain
//! unmatched", §IV-A); EIDs are processed longest-list-first so the most
//! constrained matches land before they are needed for exclusion.
//!
//! # Numerics and caching
//!
//! Joint membership probabilities are accumulated in **log space**
//! (`Σ ln P` instead of `Π P`): with long scenario lists the raw product
//! underflows to `0.0`, collapsing every candidate into a tie that was
//! silently broken by VID order. Scores are compared with
//! [`f64::total_cmp`] so a NaN probability cannot poison an argmax.
//!
//! A [`GalleryCache`] memoizes each extracted scenario's detections
//! grouped by VID. [`filter_vids`] shares one cache across all EIDs —
//! scenario reuse across lists is the point of set splitting — so each
//! V-Scenario is fetched and regrouped once, no matter how many EIDs its
//! footage serves.

use crate::types::{MatchOutcome, ScenarioList};
use ev_core::feature::{FeatureVector, Metric};
use ev_core::ids::{Eid, Vid};
use ev_core::kernel::{FeatureBlock, Kernel, KernelMode};
use ev_core::scenario::{ScenarioId, VScenario};
use ev_store::VideoStore;
use ev_telemetry::{names, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the VID filtering stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VFilterConfig {
    /// Feature distance metric behind `sim`.
    pub metric: Metric,
    /// Rule already-matched VIDs out of later candidacies.
    pub exclusion: bool,
    /// Minimum winner margin for a match to count as confident (see
    /// [`MatchOutcome::is_confident`]).
    pub min_margin: f64,
    /// Anytime/approximate evaluation knobs. `None` (the default) runs
    /// the exhaustive scan; `Some` with an
    /// [`approximate`](crate::anytime::AnytimeConfig::approximate)
    /// configuration routes every `filter_one` through
    /// [`crate::anytime`]'s bounded early-terminating scorer.
    pub anytime: Option<crate::anytime::AnytimeConfig>,
    /// Which similarity kernel scores candidate-vs-gallery memberships
    /// (CLI `--kernel`). `Scalar` is the per-pair reference path;
    /// `Block` (the default) streams the SoA [`FeatureBlock`] and is
    /// bitwise identical to it; `Quantized` adds the 8-bit prefilter
    /// (still bitwise-exact maxima — see
    /// [`Kernel::score_max_quantized`]).
    #[serde(default)]
    pub kernel: KernelMode,
}

impl Default for VFilterConfig {
    fn default() -> Self {
        VFilterConfig {
            metric: Metric::NormalizedL2,
            exclusion: true,
            min_margin: 0.01,
            anytime: None,
            kernel: KernelMode::default(),
        }
    }
}

/// Multiply-shift hasher for internal identity keys (`Vid`/`Eid` wrap a
/// `u64`). The default SipHash is DoS-resistant but costs ~10× more per
/// op, and the candidate-model accumulation hashes thousands of ids per
/// EID on the hot path; synthetic ids need no DoS resistance.
#[derive(Default)]
pub(crate) struct IdHasher(u64);

impl Hasher for IdHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 fields (FNV-1a); id keys never hit this.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        // Fold the entropy-rich high bits into the low bits the table
        // masks on.
        self.0 ^ (self.0 >> 31)
    }
}

pub(crate) type IdHashMap<K, V> = HashMap<K, V, BuildHasherDefault<IdHasher>>;

/// The **single argmax tie-break rule** of the V stage: a higher score
/// always wins; an *exact* score tie goes to the **lower VID**.
///
/// Both argmaxes of the majority pipeline — the per-scenario choice
/// (score = joint membership probability) and the majority vote itself
/// (score = vote count) — resolve ties through this one predicate, so
/// the sequential, sharded and anytime paths agree bit-for-bit on tied
/// inputs. Scores compare with [`f64::total_cmp`], so a NaN cannot
/// poison the ordering.
///
/// Returns `true` when `(score_b, b)` beats `(score_a, a)`.
#[inline]
pub(crate) fn beats(score_a: f64, a: Vid, score_b: f64, b: Vid) -> bool {
    match score_b.total_cmp(&score_a) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Equal => b < a,
        std::cmp::Ordering::Less => false,
    }
}

/// Per-scenario argmax over the candidates present in a scenario, under
/// the canonical [`beats`] tie-break (lower VID wins exact ties).
pub(crate) fn scenario_vote(
    present: impl IntoIterator<Item = Vid>,
    score: impl Fn(Vid) -> f64,
) -> Option<Vid> {
    let mut best: Option<(f64, Vid)> = None;
    for vid in present {
        let s = score(vid);
        match best {
            Some((bs, bv)) if !beats(bs, bv, s, vid) => {}
            _ => best = Some((s, vid)),
        }
    }
    best.map(|(_, v)| v)
}

/// Majority winner across per-scenario votes, under the same canonical
/// tie-break: most votes wins, an exact vote-count tie goes to the
/// lower VID. Returns the winner and its vote count.
pub(crate) fn majority_winner(counts: &BTreeMap<Vid, usize>) -> Option<(Vid, usize)> {
    let mut best: Option<(usize, Vid)> = None;
    for (&vid, &c) in counts {
        match best {
            Some((bc, bv)) if !beats(bc as f64, bv, c as f64, vid) => {}
            _ => best = Some((c, vid)),
        }
    }
    best.map(|(c, v)| (v, c))
}

/// One scenario's extracted gallery: the V-Scenario handle plus its
/// detection indices grouped by VID, in detection order. Concatenating a
/// list's groups in list order reproduces exactly the observation
/// sequence a direct detection walk would produce, so representatives
/// computed through the cache are bit-identical to uncached ones.
pub(crate) struct CacheEntry {
    pub(crate) scenario: Arc<VScenario>,
    pub(crate) groups: BTreeMap<Vid, Vec<usize>>,
    /// Per-scenario feature bounding box behind the anytime upper bound
    /// (see [`crate::anytime`]). A property of the gallery alone — no
    /// EID or representative enters it — so it is computed at most once
    /// per scenario and shared by every EID that revisits the entry.
    pub(crate) bbox: std::cell::OnceCell<Option<crate::anytime::EntryBox>>,
    /// The scenario's detections packed into an SoA [`FeatureBlock`]
    /// for the batch kernel. Like `bbox`, a property of the gallery
    /// alone: packed at most once per cache entry and shared by every
    /// EID that revisits it. `None` means the gallery was rejected
    /// (rows disagree on dimensionality) — the same condition under
    /// which the scalar path's per-pair error maps every membership of
    /// this gallery to `0`.
    block: std::cell::OnceCell<Option<FeatureBlock>>,
}

impl CacheEntry {
    pub(crate) fn new(scenario: Arc<VScenario>, groups: BTreeMap<Vid, Vec<usize>>) -> Self {
        CacheEntry {
            scenario,
            groups,
            bbox: std::cell::OnceCell::new(),
            block: std::cell::OnceCell::new(),
        }
    }

    /// The scenario's detection-feature bounding box, computed on first
    /// use and memoized for the cache entry's lifetime.
    pub(crate) fn bbox(&self) -> &Option<crate::anytime::EntryBox> {
        self.bbox.get_or_init(|| crate::anytime::entry_box(self))
    }

    /// The scenario's SoA feature block, packed on first use and
    /// memoized for the cache entry's lifetime. A mixed-dimensionality
    /// gallery fails validation **once** here — counted, with the
    /// scenario id in the error — instead of per pair in the hot loop.
    pub(crate) fn block(&self, tel: &Telemetry) -> &Option<FeatureBlock> {
        self.block.get_or_init(|| {
            let gallery = self.scenario.id().to_string();
            let features = self.scenario.detections().iter().map(|d| &d.feature);
            match FeatureBlock::build(&gallery, features) {
                Ok(b) => {
                    if tel.counters_on() {
                        tel.registry().counter(names::KERNEL_BLOCKS_BUILT).add(1);
                    }
                    Some(b)
                }
                Err(_) => {
                    if tel.counters_on() {
                        tel.registry()
                            .counter(names::KERNEL_GALLERIES_REJECTED)
                            .add(1);
                    }
                    None
                }
            }
        })
    }
}

/// Membership probability `P(VID ∈ S) = max_i sim(rep, f_i)` for one
/// `(candidate, scenario)` pair under the configured kernel — the
/// single scoring point shared by the exact scan below and the anytime
/// refiner's exact evaluations, so every kernel mode flows through both
/// paths identically.
///
/// All three modes return the **same bits**: `Block` accumulates each
/// row in scalar order (see [`ev_core::kernel`]), `Quantized` only
/// prunes rows proven unable to hold the maximum, and every error the
/// scalar path maps to `0.0` (mixed-dimensionality gallery, candidate
/// vs gallery dimension mismatch, empty scenario) maps to `0.0` here
/// too.
pub(crate) fn score_membership(
    rep: &FeatureVector,
    entry: &CacheEntry,
    config: &VFilterConfig,
    tel: &Telemetry,
) -> f64 {
    match config.kernel {
        KernelMode::Scalar => {
            ev_vision::reid::membership_probability(rep, &entry.scenario, config.metric)
                .unwrap_or(0.0)
        }
        KernelMode::Block => {
            let Some(block) = entry.block(tel) else {
                return 0.0;
            };
            match Kernel::prepare(config.metric, rep.dim()) {
                Ok(kernel) => kernel.score_max(rep, block).unwrap_or(0.0),
                Err(_) => 0.0,
            }
        }
        KernelMode::Quantized => {
            let Some(block) = entry.block(tel) else {
                return 0.0;
            };
            let Ok(kernel) = Kernel::prepare(config.metric, rep.dim()) else {
                return 0.0;
            };
            match kernel.score_max_quantized(rep, block) {
                Ok((p, pruned)) => {
                    if pruned > 0 && tel.counters_on() {
                        tel.registry()
                            .counter(names::KERNEL_PREFILTER_ROWS_PRUNED)
                            .add(pruned as u64);
                    }
                    p
                }
                Err(_) => 0.0,
            }
        }
    }
}

/// Per-candidate gallery cache for the V stage.
///
/// VID filtering revisits the same V-Scenarios over and over: across
/// EIDs (scenario reuse is the point of set splitting) and, under
/// exclusion, across refiltering rounds. The cache keeps each extracted
/// scenario's gallery grouped by VID so every revisit skips both the
/// [`VideoStore`] lookup and the regrouping pass. Misses charge the cost
/// ledger exactly as the uncached path does; hits touch no footage.
#[derive(Default)]
pub struct GalleryCache {
    entries: BTreeMap<ScenarioId, Option<CacheEntry>>,
    hits: u64,
    misses: u64,
}

impl GalleryCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        GalleryCache::default()
    }

    /// Galleries served without touching the video store.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Galleries extracted and grouped on first sight (including
    /// scenarios that turned out to have no footage).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Makes sure `id`'s gallery is resident, extracting it on a miss.
    pub(crate) fn ensure(&mut self, id: ScenarioId, video: &VideoStore) {
        if self.entries.contains_key(&id) {
            self.hits += 1;
            return;
        }
        self.misses += 1;
        let entry = video.extract(id).map(|scenario| {
            let mut groups: BTreeMap<Vid, Vec<usize>> = BTreeMap::new();
            for (i, d) in scenario.detections().iter().enumerate() {
                groups.entry(d.vid).or_default().push(i);
            }
            CacheEntry::new(scenario, groups)
        });
        self.entries.insert(id, entry);
    }

    pub(crate) fn get(&self, id: ScenarioId) -> Option<&CacheEntry> {
        self.entries.get(&id).and_then(Option::as_ref)
    }
}

/// Builds the candidate model for one EID's scenario list: the resident
/// cache entries (footage-bearing scenarios, list order) and each
/// surviving candidate's appearance representative.
///
/// This is the **shared front half** of both the exact and the
/// [`crate::anytime`] scorers — candidate admission (exclusion, quorum
/// pruning) and representative computation happen here, once, so the
/// two paths can never disagree about who is even in the running.
pub(crate) fn candidate_model<'a>(
    list: &ScenarioList,
    video: &VideoStore,
    excluded: &BTreeSet<Vid>,
    cache: &'a mut GalleryCache,
) -> (Vec<&'a CacheEntry>, BTreeMap<Vid, FeatureVector>) {
    for &id in list {
        cache.ensure(id, video);
    }
    let cache: &'a GalleryCache = cache;
    let entries: Vec<&CacheEntry> = list.iter().filter_map(|&id| cache.get(id)).collect();
    if entries.is_empty() {
        return (entries, BTreeMap::new());
    }

    // Candidate pruning (lossless for the final match): the matched VID
    // must win a strict majority of per-scenario votes, and a VID can
    // only be voted where it is present — so anyone present in fewer
    // than half the scenarios can never be the match. At high densities
    // this cuts the candidate set from "everyone in the neighbourhood"
    // to the handful sharing most of the EID's trajectory.
    //
    // Presence is counted first so the observation vectors below are
    // only ever built for quorum survivors: a dense neighbourhood has
    // hundreds of transient VIDs per list and a handful of survivors,
    // and this pass is on the per-EID hot path. The `HashMap` is pure
    // accumulation — it is never iterated, so the map's nondeterministic
    // order cannot leak into results.
    let mut presence: IdHashMap<Vid, usize> = IdHashMap::default();
    for e in &entries {
        for &vid in e.groups.keys() {
            if !excluded.contains(&vid) {
                *presence.entry(vid).or_insert(0) += 1;
            }
        }
    }
    let quorum = entries.len().div_ceil(2);

    // Build each surviving candidate's appearance model: the mean of its
    // observed features across the list, in list order exactly as a
    // direct detection walk would visit them (re-identification links
    // the detections).
    let mut observations: BTreeMap<Vid, Vec<&FeatureVector>> = BTreeMap::new();
    for e in &entries {
        let detections = e.scenario.detections();
        for (&vid, indices) in &e.groups {
            if presence.get(&vid).is_some_and(|&p| p >= quorum) {
                observations
                    .entry(vid)
                    .or_default()
                    .extend(indices.iter().map(|&i| &detections[i].feature));
            }
        }
    }
    let representatives: BTreeMap<Vid, FeatureVector> = observations
        .into_iter()
        .map(|(vid, obs)| (vid, mean_feature(&obs)))
        .collect();
    (entries, representatives)
}

/// Filters the VID for a single EID against its scenario list, treating
/// `excluded` VIDs as already matched to someone else.
///
/// Convenience wrapper over [`filter_one_cached`] with a private,
/// call-local [`GalleryCache`]; batch callers should share one cache.
#[must_use]
pub fn filter_one(
    eid: Eid,
    list: &ScenarioList,
    video: &VideoStore,
    config: &VFilterConfig,
    excluded: &BTreeSet<Vid>,
) -> MatchOutcome {
    filter_one_cached(eid, list, video, config, excluded, &mut GalleryCache::new())
}

/// [`filter_one`] against a shared [`GalleryCache`].
#[must_use]
pub fn filter_one_cached(
    eid: Eid,
    list: &ScenarioList,
    video: &VideoStore,
    config: &VFilterConfig,
    excluded: &BTreeSet<Vid>,
    cache: &mut GalleryCache,
) -> MatchOutcome {
    filter_one_instrumented(
        eid,
        list,
        video,
        config,
        excluded,
        cache,
        Telemetry::disabled(),
    )
}

/// [`filter_one_cached`] with telemetry: counts candidates scored and,
/// at the full level, records a per-scenario scoring-latency histogram.
/// With a disabled handle this is exactly `filter_one_cached`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn filter_one_instrumented(
    eid: Eid,
    list: &ScenarioList,
    video: &VideoStore,
    config: &VFilterConfig,
    excluded: &BTreeSet<Vid>,
    cache: &mut GalleryCache,
    tel: &Telemetry,
) -> MatchOutcome {
    // Anytime delegation: an approximate configuration routes the whole
    // EID through the bounded scorer. A non-approximate one (confidence
    // ≥ 1.0, no budget) falls through to the exhaustive scan below, so
    // `--confidence 1.0` is *exactly* the exact path.
    if let Some(at) = config.anytime {
        if at.approximate() {
            return crate::anytime::partial_filter_one_instrumented(
                eid, list, video, config, excluded, cache, tel,
            )
            .outcome;
        }
    }
    let (entries, representatives) = candidate_model(list, video, excluded, cache);
    if entries.is_empty() {
        // Nothing recorded / no footage for the whole list: there are
        // zero votes to take a majority over, so this is the explicit
        // NoEvidence shape (all-zero fields, never `count / 0 = NaN`).
        return MatchOutcome::no_evidence(eid);
    }
    if representatives.is_empty() {
        // Footage existed but every candidate was excluded or
        // quorum-pruned — still zero votes, same NoEvidence contract.
        return MatchOutcome::no_evidence(eid);
    }
    if tel.counters_on() {
        tel.registry()
            .counter(names::VFILTER_CANDIDATES_SCORED)
            .add(representatives.len() as u64);
    }
    // Per-scenario scoring latency is profiling-only: the clock reads
    // would dominate the membership computation at the counters level.
    let scoring_hist = tel
        .tracing_on()
        .then(|| tel.registry().histogram(names::VFILTER_SCORING_NS));

    // Joint membership probability per candidate (paper §IV-B2), in log
    // space: `Σ ln P` survives the long lists that underflow `Π P` to a
    // meaningless all-zero tie. `ln(0) = -inf` keeps the veto semantics
    // of an impossible scenario.
    let mut log_joint: BTreeMap<Vid, f64> = BTreeMap::new();
    for (&vid, rep) in &representatives {
        let mut lp = 0.0;
        for e in &entries {
            // One charged comparison per (candidate, scenario): matching
            // a candidate's appearance model against a scenario's gallery
            // is one nearest-neighbour query in a real pipeline.
            video.charge_comparison();
            let scoring_start = scoring_hist.as_ref().map(|_| Instant::now());
            lp += score_membership(rep, e, config, tel).ln();
            if let (Some(hist), Some(start)) = (&scoring_hist, scoring_start) {
                hist.record(start.elapsed().as_nanos() as u64);
            }
        }
        log_joint.insert(vid, lp);
    }

    // Per-scenario choice: the present candidate with the largest joint
    // probability, ties resolved by the canonical [`beats`] rule (lower
    // VID) — the same rule the majority vote below uses.
    let mut votes: Vec<Vid> = Vec::new();
    for e in &entries {
        let choice = scenario_vote(
            e.scenario
                .vids()
                .filter(|v| representatives.contains_key(v)),
            |v| log_joint[&v],
        );
        if let Some(v) = choice {
            votes.push(v);
        }
    }
    if votes.is_empty() {
        return MatchOutcome::no_evidence(eid);
    }

    // Majority of the per-scenario choices, under the same tie-break.
    let mut counts: BTreeMap<Vid, usize> = BTreeMap::new();
    for &v in &votes {
        *counts.entry(v).or_insert(0) += 1;
    }
    // No winner means no votes at all — an empty-gallery/no-candidate
    // edge that must flow to the explicit NoEvidence outcome instead of
    // aborting the pipeline (the guard above makes this unreachable
    // today, but the edge belongs to the outcome domain, not a panic).
    let Some((winner, count)) = majority_winner(&counts) else {
        return MatchOutcome::no_evidence(eid);
    };
    let confidence = log_joint[&winner].exp();
    let margin = if log_joint.len() > 1 {
        let runner_up = log_joint
            .iter()
            .filter(|(&v, _)| v != winner)
            .map(|(_, &lp)| lp)
            .fold(f64::NEG_INFINITY, f64::max);
        confidence - runner_up.exp()
    } else {
        1.0
    };
    // `votes` is non-empty here (guarded above), so the share can never
    // be the `0 / 0 = NaN` that an empty list would produce.
    let vote_share = count as f64 / votes.len() as f64;
    debug_assert!(!vote_share.is_nan());
    MatchOutcome {
        eid,
        vid: Some(winner),
        vote_share,
        confidence,
        margin,
        votes,
    }
}

/// Filters VIDs for every EID in `lists`, longest list first, excluding
/// majority-matched VIDs from subsequent candidacies when
/// [`VFilterConfig::exclusion`] is on. Outcomes are returned in EID
/// order. One [`GalleryCache`] is shared across the whole batch; pass
/// your own through [`filter_vids_cached`] to read its hit counters.
#[must_use]
pub fn filter_vids(
    lists: &BTreeMap<Eid, ScenarioList>,
    video: &VideoStore,
    config: &VFilterConfig,
) -> Vec<MatchOutcome> {
    filter_vids_cached(lists, video, config, &mut GalleryCache::new())
}

/// [`filter_vids`] against a caller-owned [`GalleryCache`].
#[must_use]
pub fn filter_vids_cached(
    lists: &BTreeMap<Eid, ScenarioList>,
    video: &VideoStore,
    config: &VFilterConfig,
    cache: &mut GalleryCache,
) -> Vec<MatchOutcome> {
    filter_vids_instrumented(lists, video, config, cache, Telemetry::disabled())
}

/// [`filter_vids_cached`] with telemetry: records the batch's gallery
/// hit/miss deltas, the run-wide hit ratio and a stage span. With a
/// disabled handle this is exactly `filter_vids_cached`.
#[must_use]
pub fn filter_vids_instrumented(
    lists: &BTreeMap<Eid, ScenarioList>,
    video: &VideoStore,
    config: &VFilterConfig,
    cache: &mut GalleryCache,
    tel: &Telemetry,
) -> Vec<MatchOutcome> {
    let mut stage_span = tel.span("vfilter", "stage");
    let (hits_before, misses_before) = (cache.hits(), cache.misses());
    let mut order: Vec<(&Eid, &ScenarioList)> = lists.iter().collect();
    order.sort_by_key(|(eid, list)| (std::cmp::Reverse(list.len()), **eid));

    let mut excluded: BTreeSet<Vid> = BTreeSet::new();
    let mut outcomes: Vec<MatchOutcome> = Vec::with_capacity(lists.len());
    for (&eid, list) in order {
        let outcome = filter_one_instrumented(eid, list, video, config, &excluded, cache, tel);
        if config.exclusion && outcome.is_majority() {
            if let Some(vid) = outcome.vid {
                excluded.insert(vid);
            }
        }
        outcomes.push(outcome);
    }
    outcomes.sort_by_key(|o| o.eid);
    if tel.counters_on() {
        let registry = tel.registry();
        registry
            .counter(names::VFILTER_GALLERY_HITS)
            .add(cache.hits() - hits_before);
        registry
            .counter(names::VFILTER_GALLERY_MISSES)
            .add(cache.misses() - misses_before);
        let hits = registry
            .counter_value(names::VFILTER_GALLERY_HITS)
            .unwrap_or(0);
        let total = hits
            + registry
                .counter_value(names::VFILTER_GALLERY_MISSES)
                .unwrap_or(0);
        if total > 0 {
            registry
                .gauge(names::VFILTER_GALLERY_HIT_RATIO)
                .set(hits as f64 / total as f64);
        }
    }
    stage_span.arg("eids", serde::Value::Int(lists.len() as i128));
    drop(stage_span);
    outcomes
}

/// The pre-cache [`filter_vids`]: a fresh gallery per EID, so every list
/// entry re-extracts and regroups. Kept as the reference for the
/// cache-equivalence tests and the V-stage benchmark.
#[must_use]
pub fn filter_vids_uncached(
    lists: &BTreeMap<Eid, ScenarioList>,
    video: &VideoStore,
    config: &VFilterConfig,
) -> Vec<MatchOutcome> {
    let mut order: Vec<(&Eid, &ScenarioList)> = lists.iter().collect();
    order.sort_by_key(|(eid, list)| (std::cmp::Reverse(list.len()), **eid));

    let mut excluded: BTreeSet<Vid> = BTreeSet::new();
    let mut outcomes: Vec<MatchOutcome> = Vec::with_capacity(lists.len());
    for (&eid, list) in order {
        let outcome = filter_one(eid, list, video, config, &excluded);
        if config.exclusion && outcome.is_majority() {
            if let Some(vid) = outcome.vid {
                excluded.insert(vid);
            }
        }
        outcomes.push(outcome);
    }
    outcomes.sort_by_key(|o| o.eid);
    outcomes
}

/// Component-wise mean of a non-empty set of observations.
fn mean_feature(observations: &[&FeatureVector]) -> FeatureVector {
    let dim = observations[0].dim();
    let mut sums = vec![0.0; dim];
    let mut n: f64 = 0.0;
    for obs in observations {
        if obs.dim() != dim {
            continue; // ignore malformed observations
        }
        for (s, &c) in sums.iter_mut().zip(obs.components()) {
            *s += c;
        }
        n += 1.0;
    }
    FeatureVector::from_clamped(sums.into_iter().map(|s| s / n.max(1.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, ScenarioId};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    fn fv(v: &[f64]) -> FeatureVector {
        FeatureVector::new(v.to_vec()).unwrap()
    }

    fn vscenario(cell: usize, time: u64, people: &[(u64, &[f64])]) -> VScenario {
        let mut s = VScenario::new(CellId::new(cell), Timestamp::new(time));
        for &(vid, f) in people {
            s.push(Detection {
                vid: Vid::new(vid),
                feature: fv(f),
            });
        }
        s
    }

    fn sid(cell: usize, time: u64) -> ScenarioId {
        ScenarioId::new(Timestamp::new(time), CellId::new(cell))
    }

    /// Person 1 has feature ~(0.9, 0.9); person 2 ~(0.1, 0.1);
    /// person 3 ~(0.9, 0.1).
    fn video() -> VideoStore {
        VideoStore::new(
            vec![
                vscenario(0, 0, &[(1, &[0.9, 0.9]), (2, &[0.1, 0.1])]),
                vscenario(1, 1, &[(1, &[0.88, 0.92]), (3, &[0.9, 0.1])]),
                vscenario(2, 2, &[(1, &[0.91, 0.89])]),
                vscenario(3, 3, &[(2, &[0.12, 0.1]), (3, &[0.88, 0.12])]),
            ],
            CostModel::free(),
        )
    }

    #[test]
    fn the_common_vid_wins() {
        let video = video();
        // EID X's list: scenarios 0, 1, 2 — only VID 1 appears in all.
        let list = vec![sid(0, 0), sid(1, 1), sid(2, 2)];
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert_eq!(out.vid, Some(Vid::new(1)));
        assert!(out.is_majority());
        assert_eq!(out.votes.len(), 3);
        assert!(out.vote_share >= 0.99);
        assert!(out.confidence > 0.8);
    }

    #[test]
    fn empty_list_is_unmatched() {
        let video = video();
        let out = filter_one(
            Eid::from_u64(7),
            &vec![],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert!(out.vid.is_none());
    }

    #[test]
    fn unknown_scenarios_are_skipped() {
        let video = video();
        let out = filter_one(
            Eid::from_u64(7),
            &vec![sid(9, 9), sid(0, 0)],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        // Only scenario (0,0) exists; its best candidate still wins.
        assert!(out.vid.is_some());
        assert_eq!(out.votes.len(), 1);
    }

    #[test]
    fn exclusion_rules_out_matched_vids() {
        let video = video();
        let list = vec![sid(0, 0)];
        let mut excluded = BTreeSet::new();
        excluded.insert(Vid::new(1));
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &excluded,
        );
        assert_eq!(out.vid, Some(Vid::new(2)), "VID 1 is spoken for");
        // Excluding everyone leaves no candidates.
        excluded.insert(Vid::new(2));
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &excluded,
        );
        assert!(out.vid.is_none());
    }

    #[test]
    fn filter_vids_processes_longest_lists_first() {
        let video = video();
        // EID 10's long list pins VID 1; EID 20's short list would also
        // prefer VID 1 but exclusion forces VID 2.
        let mut lists = BTreeMap::new();
        lists.insert(Eid::from_u64(10), vec![sid(0, 0), sid(1, 1), sid(2, 2)]);
        lists.insert(Eid::from_u64(20), vec![sid(0, 0)]);
        let outcomes = filter_vids(&lists, &video, &VFilterConfig::default());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].eid, Eid::from_u64(10), "sorted by EID");
        assert_eq!(outcomes[0].vid, Some(Vid::new(1)));
        assert_eq!(outcomes[1].vid, Some(Vid::new(2)));
    }

    #[test]
    fn without_exclusion_both_take_the_best_vid() {
        let video = video();
        let mut lists = BTreeMap::new();
        lists.insert(Eid::from_u64(10), vec![sid(0, 0), sid(1, 1), sid(2, 2)]);
        lists.insert(Eid::from_u64(20), vec![sid(0, 0)]);
        let cfg = VFilterConfig {
            exclusion: false,
            ..VFilterConfig::default()
        };
        let outcomes = filter_vids(&lists, &video, &cfg);
        assert_eq!(outcomes[0].vid, Some(Vid::new(1)));
        assert_eq!(outcomes[1].vid, Some(Vid::new(1)), "conflict allowed");
    }

    #[test]
    fn majority_vote_tolerates_one_bad_scenario() {
        // VID 1 appears in scenarios 0-2; scenario 3 lacks it entirely
        // (missing VID). The majority still picks VID 1.
        let video = video();
        let list = vec![sid(0, 0), sid(1, 1), sid(2, 2), sid(3, 3)];
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert_eq!(out.vid, Some(Vid::new(1)));
        assert!(out.vote_share >= 0.75, "3 of 4 scenarios vote for VID 1");
    }

    #[test]
    fn comparisons_are_charged_to_the_ledger() {
        let video = VideoStore::new(
            vec![vscenario(0, 0, &[(1, &[0.9, 0.9]), (2, &[0.1, 0.1])])],
            CostModel {
                e_record: 0,
                v_extraction: 3,
                v_comparison: 5,
            },
        );
        let _ = filter_one(
            Eid::from_u64(1),
            &vec![sid(0, 0)],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        // Extraction: 2 detections x 3 units; comparisons: 2 candidates x
        // 1 scenario x 5 units.
        assert_eq!(video.ledger().v_units(), 6 + 10);
    }

    #[test]
    fn zero_recorded_scenarios_yield_no_evidence_not_nan() {
        // Regression: an EID whose whole list has no footage used to be
        // one `count / votes.len()` away from a NaN vote share. It must
        // come back as the explicit NoEvidence shape with finite fields.
        let video = video();
        for list in [vec![], vec![sid(9, 9), sid(8, 8)]] {
            let out = filter_one(
                Eid::from_u64(7),
                &list,
                &video,
                &VFilterConfig::default(),
                &BTreeSet::new(),
            );
            assert!(out.is_no_evidence());
            assert!(!out.vote_share.is_nan());
            assert_eq!(out.vote_share, 0.0);
            assert!(!out.is_majority(), "NoEvidence can never be a majority");
        }
        // Excluding every candidate is also zero votes, not NaN.
        let excluded: BTreeSet<Vid> = [Vid::new(1), Vid::new(2)].into_iter().collect();
        let out = filter_one(
            Eid::from_u64(7),
            &vec![sid(0, 0)],
            &video,
            &VFilterConfig::default(),
            &excluded,
        );
        assert!(out.is_no_evidence());
        assert!(!out.vote_share.is_nan());
    }

    #[test]
    fn both_argmaxes_break_ties_toward_the_lower_vid() {
        // The canonical rule itself.
        let (a, b) = (Vid::new(3), Vid::new(5));
        assert!(beats(1.0, b, 1.0, a), "equal score: lower VID wins");
        assert!(!beats(1.0, a, 1.0, b));
        assert!(beats(0.0, a, 1.0, b), "higher score wins regardless");
        assert!(!beats(1.0, a, 0.0, b));
        assert!(!beats(1.0, a, 1.0, a), "nothing beats itself");

        // Per-scenario argmax: two candidates at exactly the same score.
        let vote = scenario_vote([Vid::new(9), Vid::new(4), Vid::new(6)], |_| 0.25);
        assert_eq!(vote, Some(Vid::new(4)));
        // Duplicates (one VID detected twice) change nothing.
        let vote = scenario_vote([Vid::new(9), Vid::new(4), Vid::new(4)], |_| 0.25);
        assert_eq!(vote, Some(Vid::new(4)));

        // Majority vote: equal counts resolve to the lower VID too.
        let counts: BTreeMap<Vid, usize> = [(Vid::new(8), 2), (Vid::new(2), 2), (Vid::new(5), 1)]
            .into_iter()
            .collect();
        assert_eq!(majority_winner(&counts), Some((Vid::new(2), 2)));
    }

    #[test]
    fn tied_galleries_vote_identically_end_to_end() {
        // Two identical-feature candidates: every per-scenario score
        // ties, so the whole pipeline must settle on the lower VID —
        // deterministically, whichever path (sequential/sharded/anytime)
        // scored it.
        let video = VideoStore::new(
            vec![
                vscenario(0, 0, &[(7, &[0.5, 0.5]), (4, &[0.5, 0.5])]),
                vscenario(1, 1, &[(4, &[0.5, 0.5]), (7, &[0.5, 0.5])]),
            ],
            CostModel::free(),
        );
        let out = filter_one(
            Eid::from_u64(1),
            &vec![sid(0, 0), sid(1, 1)],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert_eq!(out.vid, Some(Vid::new(4)), "lower VID wins the tie");
        assert_eq!(out.votes, vec![Vid::new(4), Vid::new(4)]);
        assert!((out.vote_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_feature_averages_components() {
        let a = fv(&[0.2, 0.4]);
        let b = fv(&[0.4, 0.8]);
        let m = mean_feature(&[&a, &b]);
        assert!((m.components()[0] - 0.3).abs() < 1e-12);
        assert!((m.components()[1] - 0.6).abs() < 1e-12);
    }
}
