//! VID filtering: the V stage (paper §IV-B2).
//!
//! For each EID, the V-Scenarios corresponding to its selected E-Scenario
//! list are extracted (through the [`VideoStore`], which charges the
//! vision cost model and caches reused scenarios). Every VID observed in
//! those scenarios is a candidate; a candidate's score is the joint
//! membership probability `Π_S P(VID ∈ S)` with
//! `P(VID ∈ S) = max_i sim(VID, VID_i)` (paper Eq. 1 and §IV-B2). In
//! every scenario the highest-scoring present candidate is *chosen*; the
//! matched VID is the majority of those per-scenario choices — exactly
//! the accuracy criterion of paper §VI-B.
//!
//! Already-matched VIDs can be *excluded* from later candidacies ("VIDs
//! that have been already matched may help distinguishing those remain
//! unmatched", §IV-A); EIDs are processed longest-list-first so the most
//! constrained matches land before they are needed for exclusion.

use crate::types::{MatchOutcome, ScenarioList};
use ev_core::feature::{FeatureVector, Metric};
use ev_core::ids::{Eid, Vid};
use ev_core::scenario::VScenario;
use ev_store::VideoStore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Configuration of the VID filtering stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VFilterConfig {
    /// Feature distance metric behind `sim`.
    pub metric: Metric,
    /// Rule already-matched VIDs out of later candidacies.
    pub exclusion: bool,
    /// Minimum winner margin for a match to count as confident (see
    /// [`MatchOutcome::is_confident`]).
    pub min_margin: f64,
}

impl Default for VFilterConfig {
    fn default() -> Self {
        VFilterConfig {
            metric: Metric::NormalizedL2,
            exclusion: true,
            min_margin: 0.01,
        }
    }
}

/// Filters the VID for a single EID against its scenario list, treating
/// `excluded` VIDs as already matched to someone else.
#[must_use]
pub fn filter_one(
    eid: Eid,
    list: &ScenarioList,
    video: &VideoStore,
    config: &VFilterConfig,
    excluded: &BTreeSet<Vid>,
) -> MatchOutcome {
    let scenarios: Vec<Arc<VScenario>> =
        list.iter().filter_map(|&id| video.extract(id)).collect();
    if scenarios.is_empty() {
        return MatchOutcome::unmatched(eid);
    }

    // Build each candidate's appearance model: the mean of its observed
    // features across the list (re-identification links the detections).
    let mut observations: BTreeMap<Vid, Vec<&FeatureVector>> = BTreeMap::new();
    let mut presence: BTreeMap<Vid, usize> = BTreeMap::new();
    for s in &scenarios {
        let mut seen: BTreeSet<Vid> = BTreeSet::new();
        for d in s.detections() {
            if !excluded.contains(&d.vid) {
                observations.entry(d.vid).or_default().push(&d.feature);
                if seen.insert(d.vid) {
                    *presence.entry(d.vid).or_insert(0) += 1;
                }
            }
        }
    }
    // Candidate pruning (lossless for the final match): the matched VID
    // must win a strict majority of per-scenario votes, and a VID can
    // only be voted where it is present — so anyone present in fewer
    // than half the scenarios can never be the match. At high densities
    // this cuts the candidate set from "everyone in the neighbourhood"
    // to the handful sharing most of the EID's trajectory.
    let quorum = scenarios.len().div_ceil(2);
    observations.retain(|vid, _| presence.get(vid).copied().unwrap_or(0) >= quorum);
    if observations.is_empty() {
        return MatchOutcome::unmatched(eid);
    }
    let representatives: BTreeMap<Vid, FeatureVector> = observations
        .into_iter()
        .map(|(vid, obs)| (vid, mean_feature(&obs)))
        .collect();

    // Joint membership probability per candidate (paper §IV-B2).
    let mut joint: BTreeMap<Vid, f64> = BTreeMap::new();
    for (&vid, rep) in &representatives {
        let mut p = 1.0;
        for s in &scenarios {
            // One charged comparison per (candidate, scenario): matching
            // a candidate's appearance model against a scenario's gallery
            // is one nearest-neighbour query in a real pipeline.
            video.charge_comparison();
            p *= ev_vision::reid::membership_probability(rep, s, config.metric)
                .unwrap_or(0.0);
        }
        joint.insert(vid, p);
    }

    // Per-scenario choice: the present candidate with the largest joint
    // probability.
    let mut votes: Vec<Vid> = Vec::new();
    for s in &scenarios {
        let choice = s
            .vids()
            .filter(|v| representatives.contains_key(v))
            .max_by(|a, b| {
                joint[a]
                    .partial_cmp(&joint[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(a)) // deterministic tie-break: lower VID
            });
        if let Some(v) = choice {
            votes.push(v);
        }
    }
    if votes.is_empty() {
        return MatchOutcome::unmatched(eid);
    }

    // Majority of the per-scenario choices.
    let mut counts: BTreeMap<Vid, usize> = BTreeMap::new();
    for &v in &votes {
        *counts.entry(v).or_insert(0) += 1;
    }
    let (&winner, &count) = counts
        .iter()
        .max_by_key(|(vid, &c)| (c, std::cmp::Reverse(**vid)))
        .expect("votes is non-empty");
    let runner_up = joint
        .iter()
        .filter(|(&v, _)| v != winner)
        .map(|(_, &p)| p)
        .fold(f64::NEG_INFINITY, f64::max);
    let margin = if runner_up.is_finite() {
        joint[&winner] - runner_up
    } else {
        1.0
    };
    MatchOutcome {
        eid,
        vid: Some(winner),
        vote_share: count as f64 / votes.len() as f64,
        confidence: joint[&winner],
        margin,
        votes,
    }
}

/// Filters VIDs for every EID in `lists`, longest list first, excluding
/// majority-matched VIDs from subsequent candidacies when
/// [`VFilterConfig::exclusion`] is on. Outcomes are returned in EID
/// order.
#[must_use]
pub fn filter_vids(
    lists: &BTreeMap<Eid, ScenarioList>,
    video: &VideoStore,
    config: &VFilterConfig,
) -> Vec<MatchOutcome> {
    let mut order: Vec<(&Eid, &ScenarioList)> = lists.iter().collect();
    order.sort_by_key(|(eid, list)| (std::cmp::Reverse(list.len()), **eid));

    let mut excluded: BTreeSet<Vid> = BTreeSet::new();
    let mut outcomes: Vec<MatchOutcome> = Vec::with_capacity(lists.len());
    for (&eid, list) in order {
        let outcome = filter_one(eid, list, video, config, &excluded);
        if config.exclusion && outcome.is_majority() {
            if let Some(vid) = outcome.vid {
                excluded.insert(vid);
            }
        }
        outcomes.push(outcome);
    }
    outcomes.sort_by_key(|o| o.eid);
    outcomes
}

/// Component-wise mean of a non-empty set of observations.
fn mean_feature(observations: &[&FeatureVector]) -> FeatureVector {
    let dim = observations[0].dim();
    let mut sums = vec![0.0; dim];
    let mut n: f64 = 0.0;
    for obs in observations {
        if obs.dim() != dim {
            continue; // ignore malformed observations
        }
        for (s, &c) in sums.iter_mut().zip(obs.components()) {
            *s += c;
        }
        n += 1.0;
    }
    FeatureVector::from_clamped(sums.into_iter().map(|s| s / n.max(1.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, ScenarioId};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    fn fv(v: &[f64]) -> FeatureVector {
        FeatureVector::new(v.to_vec()).unwrap()
    }

    fn vscenario(cell: usize, time: u64, people: &[(u64, &[f64])]) -> VScenario {
        let mut s = VScenario::new(CellId::new(cell), Timestamp::new(time));
        for &(vid, f) in people {
            s.push(Detection {
                vid: Vid::new(vid),
                feature: fv(f),
            });
        }
        s
    }

    fn sid(cell: usize, time: u64) -> ScenarioId {
        ScenarioId::new(Timestamp::new(time), CellId::new(cell))
    }

    /// Person 1 has feature ~(0.9, 0.9); person 2 ~(0.1, 0.1);
    /// person 3 ~(0.9, 0.1).
    fn video() -> VideoStore {
        VideoStore::new(
            vec![
                vscenario(0, 0, &[(1, &[0.9, 0.9]), (2, &[0.1, 0.1])]),
                vscenario(1, 1, &[(1, &[0.88, 0.92]), (3, &[0.9, 0.1])]),
                vscenario(2, 2, &[(1, &[0.91, 0.89])]),
                vscenario(3, 3, &[(2, &[0.12, 0.1]), (3, &[0.88, 0.12])]),
            ],
            CostModel::free(),
        )
    }

    #[test]
    fn the_common_vid_wins() {
        let video = video();
        // EID X's list: scenarios 0, 1, 2 — only VID 1 appears in all.
        let list = vec![sid(0, 0), sid(1, 1), sid(2, 2)];
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert_eq!(out.vid, Some(Vid::new(1)));
        assert!(out.is_majority());
        assert_eq!(out.votes.len(), 3);
        assert!(out.vote_share >= 0.99);
        assert!(out.confidence > 0.8);
    }

    #[test]
    fn empty_list_is_unmatched() {
        let video = video();
        let out = filter_one(
            Eid::from_u64(7),
            &vec![],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert!(out.vid.is_none());
    }

    #[test]
    fn unknown_scenarios_are_skipped() {
        let video = video();
        let out = filter_one(
            Eid::from_u64(7),
            &vec![sid(9, 9), sid(0, 0)],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        // Only scenario (0,0) exists; its best candidate still wins.
        assert!(out.vid.is_some());
        assert_eq!(out.votes.len(), 1);
    }

    #[test]
    fn exclusion_rules_out_matched_vids() {
        let video = video();
        let list = vec![sid(0, 0)];
        let mut excluded = BTreeSet::new();
        excluded.insert(Vid::new(1));
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &excluded,
        );
        assert_eq!(out.vid, Some(Vid::new(2)), "VID 1 is spoken for");
        // Excluding everyone leaves no candidates.
        excluded.insert(Vid::new(2));
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &excluded,
        );
        assert!(out.vid.is_none());
    }

    #[test]
    fn filter_vids_processes_longest_lists_first() {
        let video = video();
        // EID 10's long list pins VID 1; EID 20's short list would also
        // prefer VID 1 but exclusion forces VID 2.
        let mut lists = BTreeMap::new();
        lists.insert(Eid::from_u64(10), vec![sid(0, 0), sid(1, 1), sid(2, 2)]);
        lists.insert(Eid::from_u64(20), vec![sid(0, 0)]);
        let outcomes = filter_vids(&lists, &video, &VFilterConfig::default());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].eid, Eid::from_u64(10), "sorted by EID");
        assert_eq!(outcomes[0].vid, Some(Vid::new(1)));
        assert_eq!(outcomes[1].vid, Some(Vid::new(2)));
    }

    #[test]
    fn without_exclusion_both_take_the_best_vid() {
        let video = video();
        let mut lists = BTreeMap::new();
        lists.insert(Eid::from_u64(10), vec![sid(0, 0), sid(1, 1), sid(2, 2)]);
        lists.insert(Eid::from_u64(20), vec![sid(0, 0)]);
        let cfg = VFilterConfig {
            exclusion: false,
            ..VFilterConfig::default()
        };
        let outcomes = filter_vids(&lists, &video, &cfg);
        assert_eq!(outcomes[0].vid, Some(Vid::new(1)));
        assert_eq!(outcomes[1].vid, Some(Vid::new(1)), "conflict allowed");
    }

    #[test]
    fn majority_vote_tolerates_one_bad_scenario() {
        // VID 1 appears in scenarios 0-2; scenario 3 lacks it entirely
        // (missing VID). The majority still picks VID 1.
        let video = video();
        let list = vec![sid(0, 0), sid(1, 1), sid(2, 2), sid(3, 3)];
        let out = filter_one(
            Eid::from_u64(7),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        assert_eq!(out.vid, Some(Vid::new(1)));
        assert!(out.vote_share >= 0.75, "3 of 4 scenarios vote for VID 1");
    }

    #[test]
    fn comparisons_are_charged_to_the_ledger() {
        let video = VideoStore::new(
            vec![vscenario(0, 0, &[(1, &[0.9, 0.9]), (2, &[0.1, 0.1])])],
            CostModel {
                e_record: 0,
                v_extraction: 3,
                v_comparison: 5,
            },
        );
        let _ = filter_one(
            Eid::from_u64(1),
            &vec![sid(0, 0)],
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        // Extraction: 2 detections x 3 units; comparisons: 2 candidates x
        // 1 scenario x 5 units.
        assert_eq!(video.ledger().v_units(), 6 + 10);
    }

    #[test]
    fn mean_feature_averages_components() {
        let a = fv(&[0.2, 0.4]);
        let b = fv(&[0.4, 0.8]);
        let m = mean_feature(&[&a, &b]);
        assert!((m.components()[0] - 0.3).abs() < 1e-12);
        assert!((m.components()[1] - 0.6).abs() < 1e-12);
    }
}
