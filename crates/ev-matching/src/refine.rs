//! Matching refinement (paper Algorithm 2).
//!
//! One pass of set splitting plus VID filtering can leave some EIDs with
//! an unacceptable match — no majority winner, or no candidates at all —
//! typically because of missing VIDs (occlusion, detector misses) or
//! missing EIDs (device-less bystanders polluting the V-Scenarios).
//! Algorithm 2 loops: collect the EIDs whose match is unacceptable,
//! rebuild their scenario lists from *different* scenarios (a fresh
//! random-timestamp order), exclude the VIDs already confidently matched,
//! and filter again, until everything is acceptable or the round budget
//! is spent.

use crate::practical::split_practical;
use crate::setsplit::{split_ideal_instrumented, SelectionStrategy, SetSplitConfig};
use crate::types::{IndexCounters, MatchOutcome, MatchReport, ScenarioList};
use crate::vfilter::{filter_one_instrumented, GalleryCache, VFilterConfig};
use ev_core::ids::{Eid, Vid};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_telemetry::{names, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Which splitting semantics a refinement run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitMode {
    /// Ideal-setting partition refinement (Algorithm 1).
    Ideal,
    /// Practical-setting vague-zone cover refinement (§IV-C2).
    Practical,
}

/// Configuration of the refinement loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Splitting semantics.
    pub mode: SplitMode,
    /// Base set-splitting configuration; each round reseeds the
    /// random-time strategy so retries see different scenarios.
    pub split: SetSplitConfig,
    /// VID filtering configuration.
    pub vfilter: VFilterConfig,
    /// Maximum refinement rounds (1 = no refinement).
    pub max_rounds: u32,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            mode: SplitMode::Ideal,
            split: SetSplitConfig::default(),
            vfilter: VFilterConfig::default(),
            max_rounds: 3,
        }
    }
}

/// Runs set splitting and VID filtering with refinement (Algorithm 2).
#[must_use]
pub fn match_with_refinement(
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    config: &RefineConfig,
) -> MatchReport {
    match_with_refinement_excluding(store, video, targets, config, &BTreeSet::new())
}

/// [`match_with_refinement`] over any [`StoreBackend`] — the corpus may
/// live in memory or be a loaded `ev-disk` directory; the pipeline and
/// its results are identical either way.
#[must_use]
pub fn match_with_refinement_on<B: StoreBackend>(
    backend: &B,
    targets: &BTreeSet<Eid>,
    config: &RefineConfig,
) -> MatchReport {
    match_with_refinement(backend.estore(), backend.video(), targets, config)
}

/// Like [`match_with_refinement`], with VIDs that are already spoken for
/// (e.g. by a previous incremental run) ruled out of every candidacy.
#[must_use]
pub fn match_with_refinement_excluding(
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    config: &RefineConfig,
    excluded: &BTreeSet<Vid>,
) -> MatchReport {
    match_with_refinement_instrumented(
        store,
        video,
        targets,
        config,
        excluded,
        Telemetry::disabled(),
    )
}

/// [`match_with_refinement_excluding`] with telemetry: pipeline/round
/// spans, refinement-round and stage-time metrics, plus the paper's
/// semantic gauges (recorded scenarios against the Theorem 4.2/4.4
/// bounds, distinct V-frames, majority-vote accuracy). With a disabled
/// handle this is exactly `match_with_refinement_excluding`.
#[must_use]
pub fn match_with_refinement_instrumented(
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    config: &RefineConfig,
    excluded: &BTreeSet<Vid>,
    tel: &Telemetry,
) -> MatchReport {
    let mut pipeline_span = tel.span("match_with_refinement", "pipeline");
    let mut report = MatchReport::default();
    // Theorem 4.2/4.4 gauges describe the *first* split round, where the
    // whole target set is split at once.
    let mut first_round_recorded = 0usize;
    let mut first_round_fully_split = false;
    let mut accepted: BTreeMap<Eid, MatchOutcome> = BTreeMap::new();
    let mut matched_vids: BTreeSet<Vid> = excluded.clone();
    let mut pending: BTreeSet<Eid> = targets.clone();
    let mut rounds = 0;
    let index_before = store.index().stats();
    // One gallery cache for the whole run: refinement rounds revisit the
    // footage earlier rounds already extracted and grouped.
    let mut cache = GalleryCache::new();

    while !pending.is_empty() && rounds < config.max_rounds.max(1) {
        rounds += 1;
        let mut round_span = tel.span(format!("refine_round_{rounds}"), "round");
        round_span.arg("pending", serde::Value::Int(pending.len() as i128));

        // --- E stage: rebuild scenario lists for the pending EIDs. ---
        let e_start = Instant::now();
        let split_cfg = reseeded(&config.split, rounds);
        let mut lists: BTreeMap<Eid, ScenarioList> = match config.mode {
            SplitMode::Ideal => {
                let out = split_ideal_instrumented(store, &pending, &split_cfg, tel);
                if rounds == 1 {
                    first_round_recorded = out.recorded.len();
                    first_round_fully_split = out.fully_split();
                }
                report.selected_scenarios.extend(out.selected());
                out.lists
            }
            SplitMode::Practical => {
                let out = split_practical(store, &pending, &split_cfg);
                if rounds == 1 {
                    first_round_recorded = out.recorded.len();
                    first_round_fully_split = out.fully_split();
                }
                report.selected_scenarios.extend(out.selected());
                out.lists
            }
        };
        if rounds > 1 {
            // Refinement rounds work on few EIDs, where set splitting
            // degenerates (a small universe needs almost no splitters);
            // extend short lists with per-EID greedy E-filtering so the V
            // stage has discriminating footage to look at.
            let edp_cfg = crate::edp::EdpConfig {
                vfilter: config.vfilter,
                max_scenarios_per_eid: None,
                seed: u64::from(rounds),
            };
            for (&eid, list) in lists.iter_mut() {
                for id in crate::edp::efilter_one(store, eid, &edp_cfg) {
                    if !list.contains(&id) {
                        list.push(id);
                        report.selected_scenarios.insert(id);
                    }
                }
            }
        }
        report.timings.e_stage += e_start.elapsed();

        // --- V stage: filter, longest lists first, excluding VIDs that
        // earlier rounds (or earlier EIDs this round) locked in. ---
        let v_start = Instant::now();
        let mut order: Vec<(&Eid, &ScenarioList)> = lists.iter().collect();
        order.sort_by_key(|(eid, list)| (std::cmp::Reverse(list.len()), **eid));
        for (&eid, list) in order {
            let outcome = filter_one_instrumented(
                eid,
                list,
                video,
                &config.vfilter,
                &matched_vids,
                &mut cache,
                tel,
            );
            if outcome.is_confident(config.vfilter.min_margin) {
                if config.vfilter.exclusion {
                    if let Some(vid) = outcome.vid {
                        matched_vids.insert(vid);
                    }
                }
                report.lists.insert(eid, list.clone());
                accepted.insert(eid, outcome);
                pending.remove(&eid);
            } else if rounds >= config.max_rounds.max(1) {
                // Out of budget: keep the best effort; flag it by its
                // missing majority ("human intervention may be required",
                // §IV-C4).
                report.lists.insert(eid, list.clone());
                accepted.insert(eid, outcome);
            } else {
                // Remember the attempt so an exhausted pool still reports
                // something, but leave the EID pending.
                report.lists.entry(eid).or_insert_with(|| list.clone());
                accepted.entry(eid).or_insert(outcome);
            }
        }
        report.timings.v_stage += v_start.elapsed();
    }

    let index_delta = store.index().stats().since(&index_before);
    report.timings.index = IndexCounters {
        postings_probed: index_delta.postings_probed,
        cache_hits: cache.hits(),
        scans_avoided: index_delta.scans_avoided,
    };
    report.outcomes = accepted.into_values().collect();
    report.outcomes.sort_by_key(|o| o.eid);
    report.rounds = rounds;
    if tel.counters_on() {
        let registry = tel.registry();
        registry
            .counter(names::REFINE_ROUNDS)
            .add(u64::from(report.rounds));
        registry
            .counter(names::VFILTER_GALLERY_HITS)
            .add(cache.hits());
        registry
            .counter(names::VFILTER_GALLERY_MISSES)
            .add(cache.misses());
        let total = cache.hits() + cache.misses();
        if total > 0 {
            registry
                .gauge(names::VFILTER_GALLERY_HIT_RATIO)
                .set(cache.hits() as f64 / total as f64);
        }
        report.timings.record_to(registry);
        record_paper_gauges(
            registry,
            targets.len(),
            first_round_recorded,
            first_round_fully_split,
            cache.misses(),
            &report,
        );
    }
    pipeline_span.arg("rounds", serde::Value::Int(i128::from(report.rounds)));
    drop(pipeline_span);
    report
}

/// Exports the paper-semantic gauges for a finished run: the recorded
/// count of the first (whole-target-set) split round next to the
/// Theorem 4.2 lower bound `ceil(log2 n)` and the Theorem 4.4 upper
/// bound `n - 1`, whether the bounds' fully-split precondition held,
/// the distinct V-frames extracted, and the majority-vote accuracy.
pub(crate) fn record_paper_gauges(
    registry: &ev_telemetry::MetricsRegistry,
    n_targets: usize,
    recorded: usize,
    fully_split: bool,
    v_frames: u64,
    report: &MatchReport,
) {
    registry
        .gauge(names::RECORDED_SCENARIOS)
        .set(recorded as f64);
    registry
        .gauge(names::THEOREM_LOWER_BOUND)
        .set(ceil_log2(n_targets) as f64);
    registry
        .gauge(names::THEOREM_UPPER_BOUND)
        .set(n_targets.saturating_sub(1) as f64);
    registry
        .gauge(names::FULLY_SPLIT)
        .set(if fully_split { 1.0 } else { 0.0 });
    registry
        .gauge(names::DISTINCT_V_FRAMES)
        .set(v_frames as f64);
    registry
        .gauge(names::MAJORITY_VOTE_ACCURACY)
        .set(report.majority_rate());
    registry
        .gauge(names::SELECTED_SCENARIOS)
        .set(report.selected_count() as f64);
}

/// `ceil(log2 n)` over integers; 0 for `n <= 1`.
pub(crate) fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Derives the per-round splitting configuration: random-time runs get a
/// fresh seed each round so refinement actually sees different scenarios.
fn reseeded(base: &SetSplitConfig, round: u32) -> SetSplitConfig {
    match base.strategy {
        SelectionStrategy::RandomTime { seed } => SetSplitConfig {
            strategy: SelectionStrategy::RandomTime {
                seed: seed.wrapping_add(u64::from(round) - 1),
            },
            ..*base
        },
        _ => *base,
    }
}

/// Convenience wrapper: a single pass (no refinement) in the given mode.
#[must_use]
pub fn match_once(
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    mode: SplitMode,
    split: &SetSplitConfig,
    vfilter: &VFilterConfig,
) -> MatchReport {
    match_with_refinement(
        store,
        video,
        targets,
        &RefineConfig {
            mode,
            split: *split,
            vfilter: *vfilter,
            max_rounds: 1,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    /// Builds matching E/V stores from a layout of
    /// `(time, cell, e_people, v_people)`; person p's feature is one-hot.
    fn world(layout: &[(u64, usize, &[u64], &[u64])], dim: usize) -> (EScenarioStore, VideoStore) {
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for &(t, c, e_people, v_people) in layout {
            let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
            for &p in e_people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
            }
            es.push(e);
            let mut v = VScenario::new(CellId::new(c), Timestamp::new(t));
            for &p in v_people {
                let mut f = vec![0.05; dim];
                f[p as usize % dim] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn targets(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    #[test]
    fn clean_world_matches_in_one_round() {
        let layout: &[(u64, usize, &[u64], &[u64])] = &[
            (0, 0, &[0, 1], &[0, 1]),
            (0, 1, &[2, 3], &[2, 3]),
            (1, 0, &[0, 2], &[0, 2]),
            (1, 1, &[1, 3], &[1, 3]),
        ];
        let (store, video) = world(layout, 4);
        let report =
            match_with_refinement(&store, &video, &targets(0..4), &RefineConfig::default());
        assert_eq!(report.rounds, 1);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
            assert!(o.is_majority());
        }
    }

    #[test]
    fn missing_vid_recovers_through_refinement() {
        // Person 1's VID is missing from the t0 scenarios (miss
        // detection), but present at t1/t2. A first pass built on t0 may
        // fail; refinement reaches the later scenarios.
        let layout: &[(u64, usize, &[u64], &[u64])] = &[
            (0, 0, &[0, 1], &[0]), // VID 1 missed here
            (0, 1, &[2], &[2]),
            (1, 0, &[1, 2], &[1, 2]),
            (1, 1, &[0], &[0]),
            (2, 0, &[1], &[1]),
            (2, 1, &[0, 2], &[0, 2]),
        ];
        let (store, video) = world(layout, 4);
        let cfg = RefineConfig {
            max_rounds: 4,
            ..RefineConfig::default()
        };
        let report = match_with_refinement(&store, &video, &targets(0..3), &cfg);
        let o1 = report.outcome_of(Eid::from_u64(1)).unwrap();
        assert_eq!(o1.vid, Some(Vid::new(1)), "refinement must recover EID 1");
    }

    #[test]
    fn exhausted_budget_reports_best_effort() {
        // EID 5 exists in E-data but its VID never appears in V-data.
        let layout: &[(u64, usize, &[u64], &[u64])] =
            &[(0, 0, &[5], &[]), (1, 0, &[5, 6], &[6]), (2, 0, &[6], &[6])];
        let (store, video) = world(layout, 8);
        let cfg = RefineConfig {
            max_rounds: 2,
            ..RefineConfig::default()
        };
        let report = match_with_refinement(&store, &video, &targets([5, 6]), &cfg);
        assert_eq!(report.outcomes.len(), 2, "every EID gets an outcome");
        let o5 = report.outcome_of(Eid::from_u64(5)).unwrap();
        // Either unmatched or (wrongly) matched without our assertion —
        // what matters is the report covers it and rounds were spent.
        assert!(report.rounds >= 1);
        assert!(o5.vid.is_none() || !o5.votes.is_empty());
    }

    #[test]
    fn practical_mode_runs_end_to_end() {
        let layout: &[(u64, usize, &[u64], &[u64])] = &[
            (0, 0, &[0, 1], &[0, 1]),
            (1, 0, &[0, 2], &[0, 2]),
            (2, 0, &[1, 2], &[1, 2]),
        ];
        let (store, video) = world(layout, 4);
        let cfg = RefineConfig {
            mode: SplitMode::Practical,
            ..RefineConfig::default()
        };
        let report = match_with_refinement(&store, &video, &targets(0..3), &cfg);
        assert_eq!(report.outcomes.len(), 3);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn reseeding_changes_only_random_time() {
        let base = SetSplitConfig::default();
        let r2 = reseeded(&base, 2);
        assert_ne!(base, r2);
        let chrono = SetSplitConfig {
            strategy: SelectionStrategy::Chronological,
            max_scenarios: None,
            min_list_len: 0,
        };
        assert_eq!(reseeded(&chrono, 5), chrono);
    }

    #[test]
    fn report_accumulates_selected_scenarios_across_rounds() {
        let layout: &[(u64, usize, &[u64], &[u64])] = &[
            (0, 0, &[0, 1], &[0]), // 1 missing
            (1, 0, &[0], &[0]),
            (2, 0, &[1], &[1]),
        ];
        let (store, video) = world(layout, 4);
        let cfg = RefineConfig {
            max_rounds: 3,
            ..RefineConfig::default()
        };
        let report = match_with_refinement(&store, &video, &targets(0..2), &cfg);
        assert!(!report.selected_scenarios.is_empty());
        for list in report.lists.values() {
            for id in list {
                assert!(report.selected_scenarios.contains(id));
            }
        }
    }

    #[test]
    fn ceil_log2_matches_the_theorem_bound_table() {
        for (n, want) in [
            (0, 0),
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
        ] {
            assert_eq!(ceil_log2(n), want, "ceil(log2 {n})");
        }
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn instrumented_run_matches_plain_run_and_exports_gauges() {
        let layout: &[(u64, usize, &[u64], &[u64])] = &[
            (0, 0, &[0, 1], &[0, 1]),
            (0, 1, &[2, 3], &[2, 3]),
            (1, 0, &[0, 2], &[0, 2]),
            (1, 1, &[1, 3], &[1, 3]),
        ];
        let (store, video) = world(layout, 8);
        let cfg = RefineConfig {
            mode: SplitMode::Ideal,
            ..RefineConfig::default()
        };
        let plain = match_with_refinement(&store, &video, &targets(0..4), &cfg);
        let tel = ev_telemetry::Telemetry::new(ev_telemetry::TelemetryLevel::Full);
        let instrumented = match_with_refinement_instrumented(
            &store,
            &video,
            &targets(0..4),
            &cfg,
            &BTreeSet::new(),
            &tel,
        );
        assert_eq!(plain.outcomes, instrumented.outcomes);
        assert_eq!(plain.lists, instrumented.lists);
        let snap = tel.registry().snapshot();
        let gauge = |name: &str| *snap.gauges.get(name).expect("gauge exported");
        assert_eq!(gauge(names::THEOREM_LOWER_BOUND), 2.0);
        assert_eq!(gauge(names::THEOREM_UPPER_BOUND), 3.0);
        if gauge(names::FULLY_SPLIT) == 1.0 {
            let recorded = gauge(names::RECORDED_SCENARIOS);
            assert!((2.0..=3.0).contains(&recorded), "recorded {recorded}");
        }
        assert!(!tel.tracer().is_empty(), "spans recorded at full level");
    }
}
