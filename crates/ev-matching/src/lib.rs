//! The EV-Matching algorithms (the paper's primary contribution).
//!
//! Given an [`EScenarioStore`](ev_store::EScenarioStore) (cheap electronic
//! snapshots) and a [`VideoStore`](ev_store::VideoStore) (expensive visual
//! footage), this crate matches each requested EID to the VID of the
//! person carrying it:
//!
//! * [`setsplit`] — **EID set splitting** (paper Algorithm 1): refine a
//!   partition of the requested EIDs with E-Scenarios until every EID is
//!   alone in its block, recording the *effective* scenarios. Far fewer
//!   V-Scenarios are touched than matching each EID separately, because
//!   one scenario helps distinguish every EID it contains.
//! * [`practical`] — the vague-zone variant for drifting EIDs
//!   (paper §IV-C2, Theorem 4.3).
//! * [`vfilter`] — **VID filtering**: in the V-Scenarios of an EID's
//!   recorded list, score every VID by the probability product of
//!   paper §IV-B2 and pick the majority winner, excluding already-matched
//!   VIDs ("VIDs that have been already matched may help distinguishing
//!   those remain unmatched", §IV-A).
//! * [`anytime`] — **anytime VID filtering**: the same majority vote
//!   with certified early termination — cheap similarity bounds settle
//!   per-scenario votes without exact scoring, the scan stops once no
//!   unscored scenario can overturn the leader, and callers get a
//!   [`PartialMatchOutcome`] whose vote-share interval brackets the
//!   exact answer at any stopping point.
//! * [`refine`] — **matching refining** (Algorithm 2): rerun splitting and
//!   filtering for the EIDs whose match was unacceptable, to cope with
//!   missing EIDs/VIDs.
//! * [`edp`] — the **EDP baseline** from Teng et al. \[24\]: per-EID
//!   two-stage E-filtering and V-identification, with the paper's
//!   MapReduce adaptation (one EID per mapper).
//! * [`parallel`] — the MapReduce parallelization (paper Algorithm 3) of
//!   both stages on the [`ev_mapreduce`] engine.
//! * [`sharded`] — real multi-core execution: the same pipeline sharded
//!   by cell across the `ev-exec` work-stealing thread pool, with a
//!   thread-count-independent (byte-identical) [`MatchReport`].
//! * [`dagflow`] — the whole pipeline as **one stage-DAG submission**
//!   on the lineage-tracking scheduler in [`ev_mapreduce::dag`]:
//!   splitting rounds overlap instead of barriering, and a lost worker
//!   costs only the partitions it was computing.
//! * [`incremental`] — updates over a growing corpus: keep confident
//!   matches, re-run only new or ambiguous EIDs.
//! * [`matcher`] — the high-level [`EvMatcher`] API
//!   with elastic matching sizes: single EID, a requested set, or the
//!   universal dataset.
//!
//! # Quick start
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! run against a generated dataset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod anytime;
pub mod dagflow;
pub mod edp;
pub mod incremental;
pub mod matcher;
pub mod parallel;
pub mod practical;
pub mod refine;
pub mod setsplit;
pub mod sharded;
mod types;
pub mod vfilter;

pub use anytime::{AnytimeConfig, PartialMatchOutcome};
pub use matcher::{EvMatcher, MatcherConfig};
pub use types::{IndexCounters, MatchOutcome, MatchReport, ScenarioList, StageTimings};
