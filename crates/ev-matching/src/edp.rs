//! The EDP baseline (Teng et al., INFOCOM 2012 \[24\]) — the
//! comparison line in every evaluation result: paper Figs. 5–11 and
//! Tables I–II all plot SS against this module's output
//! (`experiments fig5` … `table2` regenerate them).
//!
//! EDP matches **one EID at a time** with a two-stage E-filtering /
//! V-identification strategy: scan the E-data for scenarios containing
//! the target EID, keeping only scenarios that shrink the set of EIDs
//! co-present in *every* selected scenario, until the target is the
//! unique survivor; then identify the VID common to the corresponding
//! V-Scenarios.
//!
//! For a fair comparison with the parallel set-splitting algorithm, the
//! paper adapts EDP to MapReduce "by assigning each mapper one EID
//! matching task" (§VI-B); [`match_edp_parallel`] does exactly that on
//! the [`ev_mapreduce`] engine. Scenario selections are *not* shared
//! between EIDs — the reuse that makes set splitting cheaper simply does
//! not happen, although a scenario picked independently for two EIDs is
//! only extracted (and counted) once.

use crate::types::{IndexCounters, MatchOutcome, MatchReport, ScenarioList, StageTimings};
use crate::vfilter::{filter_one, filter_one_cached, GalleryCache, VFilterConfig};
use ev_core::ids::Eid;
use ev_core::scenario::ScenarioId;
use ev_mapreduce::{ClusterConfig, Emitter, MapReduce, Mapper, Reducer};
use ev_store::{EScenarioStore, VideoStore};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Configuration of the EDP baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdpConfig {
    /// VID filtering settings (EDP never uses exclusion — each EID is
    /// matched independently; the flag is ignored).
    pub vfilter: VFilterConfig,
    /// Cap on scenarios selected per EID (`None` = until unique or
    /// exhausted).
    pub max_scenarios_per_eid: Option<usize>,
    /// Seed for the per-EID random scan order.
    pub seed: u64,
}

impl Default for EdpConfig {
    fn default() -> Self {
        EdpConfig {
            vfilter: VFilterConfig {
                exclusion: false,
                ..VFilterConfig::default()
            },
            max_scenarios_per_eid: None,
            seed: 0,
        }
    }
}

/// E-filtering for one EID: scan the scenarios where `eid` was
/// confidently observed (inclusive zone) in a seeded random order,
/// keeping those that shrink the co-presence intersection, until `eid`
/// is unique.
///
/// The intersection runs over **all** EIDs in the E-data (not just a
/// requested subset) — EDP has no notion of a matching cohort. The
/// random order matters: consecutive time windows share cohabitants
/// (people move slowly), so a chronological scan shrinks the
/// intersection far more slowly than temporally spread picks.
#[must_use]
pub fn efilter_one(store: &EScenarioStore, eid: Eid, config: &EdpConfig) -> ScenarioList {
    let cap = config.max_scenarios_per_eid.unwrap_or(usize::MAX);
    let mut pool: Vec<&ev_core::EScenario> = store
        .containing(eid)
        .filter(|s| s.contains_inclusive(eid))
        .collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
        config.seed ^ eid.as_u64().wrapping_mul(0x9e3779b97f4a7c15),
    );
    pool.shuffle(&mut rng);
    let mut candidates: Option<BTreeSet<Eid>> = None;
    let mut list: ScenarioList = Vec::new();
    for scenario in pool {
        if list.len() >= cap {
            break;
        }
        let eids: BTreeSet<Eid> = scenario.eids().collect();
        let next = match &candidates {
            None => eids,
            Some(current) => {
                let next: BTreeSet<Eid> = current.intersection(&eids).copied().collect();
                if next.len() == current.len() {
                    continue; // no discrimination; skip this scenario
                }
                next
            }
        };
        list.push(scenario.id());
        let done = next.len() <= 1;
        candidates = Some(next);
        if done {
            break;
        }
    }
    list
}

/// Matches a set of EIDs with sequential EDP: per-EID E-filtering followed
/// by per-EID V-identification. Scenario reuse across EIDs is incidental;
/// the [`VideoStore`] still extracts any shared scenario only once.
#[must_use]
pub fn match_edp(
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    config: &EdpConfig,
) -> MatchReport {
    let index_before = store.index().stats();
    let e_start = Instant::now();
    let lists: BTreeMap<Eid, ScenarioList> = targets
        .iter()
        .map(|&eid| (eid, efilter_one(store, eid, config)))
        .collect();
    let e_stage = e_start.elapsed();

    let v_start = Instant::now();
    let empty = BTreeSet::new();
    let mut cache = GalleryCache::new();
    let mut outcomes: Vec<MatchOutcome> = lists
        .iter()
        .map(|(&eid, list)| {
            filter_one_cached(eid, list, video, &config.vfilter, &empty, &mut cache)
        })
        .collect();
    outcomes.sort_by_key(|o| o.eid);
    let v_stage = v_start.elapsed();

    let index_delta = store.index().stats().since(&index_before);
    let selected: BTreeSet<ScenarioId> = lists.values().flat_map(|l| l.iter().copied()).collect();
    MatchReport {
        outcomes,
        lists,
        selected_scenarios: selected,
        timings: StageTimings {
            e_stage,
            v_stage,
            index: IndexCounters {
                postings_probed: index_delta.postings_probed,
                cache_hits: cache.hits(),
                scans_avoided: index_delta.scans_avoided,
            },
        },
        rounds: 1,
    }
}

/// E-stage mapper of the MapReduce adaptation: one EID's E-filtering per
/// map task.
struct EFilterMapper<'a> {
    store: &'a EScenarioStore,
    config: EdpConfig,
}

impl Mapper<Eid> for EFilterMapper<'_> {
    type Key = Eid;
    type Value = ScenarioList;

    fn map(&self, eid: &Eid, out: &mut Emitter<Self::Key, Self::Value>) {
        out.emit(*eid, efilter_one(self.store, *eid, &self.config));
    }
}

struct ListReducer;
impl Reducer<Eid, ScenarioList> for ListReducer {
    type Output = (Eid, ScenarioList);
    fn reduce(&self, key: &Eid, values: &[ScenarioList]) -> Vec<(Eid, ScenarioList)> {
        values
            .first()
            .map(|l| (*key, l.clone()))
            .into_iter()
            .collect()
    }
}

/// V-stage mapper: one EID's V-identification per map task.
struct VIdentifyMapper<'a> {
    video: &'a VideoStore,
    config: EdpConfig,
}

impl Mapper<(Eid, ScenarioList)> for VIdentifyMapper<'_> {
    type Key = Eid;
    type Value = MatchOutcome;

    fn map(&self, record: &(Eid, ScenarioList), out: &mut Emitter<Self::Key, Self::Value>) {
        let outcome = filter_one(
            record.0,
            &record.1,
            self.video,
            &self.config.vfilter,
            &BTreeSet::new(),
        );
        out.emit(record.0, outcome);
    }
}

struct OutcomeReducer;
impl Reducer<Eid, MatchOutcome> for OutcomeReducer {
    type Output = MatchOutcome;
    fn reduce(&self, _key: &Eid, values: &[MatchOutcome]) -> Vec<MatchOutcome> {
        values.first().cloned().into_iter().collect()
    }
}

/// The paper's MapReduce adaptation of EDP: "assigning each mapper one
/// EID matching task" (§VI-B), as two jobs so the E- and V-stage times
/// stay separable the way Figs. 8–9 report them.
///
/// # Errors
///
/// Propagates [`ev_mapreduce::JobError`] from the engine (configuration or
/// injected-fault exhaustion).
pub fn match_edp_parallel(
    engine: &MapReduce,
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    config: &EdpConfig,
) -> Result<MatchReport, ev_mapreduce::JobError> {
    // E stage: per-EID E-filtering, one EID per mapper.
    let index_before = store.index().stats();
    let e_start = Instant::now();
    let inputs: Vec<Eid> = targets.iter().copied().collect();
    let e_result = engine.run(
        inputs,
        &EFilterMapper {
            store,
            config: *config,
        },
        &ListReducer,
    )?;
    let lists: BTreeMap<Eid, ScenarioList> = e_result.output.into_iter().collect();
    let e_stage = e_start.elapsed();

    // V stage: per-EID V-identification, one EID per mapper. The video
    // store deduplicates extraction of incidentally shared scenarios.
    let v_start = Instant::now();
    let v_inputs: Vec<(Eid, ScenarioList)> = lists.iter().map(|(&e, l)| (e, l.clone())).collect();
    let v_result = engine.run(
        v_inputs,
        &VIdentifyMapper {
            video,
            config: *config,
        },
        &OutcomeReducer,
    )?;
    let mut outcomes = v_result.output;
    outcomes.sort_by_key(|o| o.eid);
    let v_stage = v_start.elapsed();

    let index_delta = store.index().stats().since(&index_before);
    let selected = lists.values().flat_map(|l| l.iter().copied()).collect();
    Ok(MatchReport {
        outcomes,
        lists,
        selected_scenarios: selected,
        timings: StageTimings {
            e_stage,
            v_stage,
            index: IndexCounters {
                postings_probed: index_delta.postings_probed,
                cache_hits: 0,
                scans_avoided: index_delta.scans_avoided,
            },
        },
        rounds: 1,
    })
}

/// Builds a default engine for [`match_edp_parallel`] whose split size is
/// one — each mapper gets exactly one EID, as the paper specifies.
#[must_use]
pub fn edp_engine(mut cluster: ClusterConfig) -> MapReduce {
    cluster.split_size = 1;
    MapReduce::new(cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_core::Vid;
    use ev_vision::cost::CostModel;

    /// A tiny world: persons 0..4, person i's feature = one-hot-ish.
    /// Scenario layout (time, cell, inhabitants):
    ///   t0 c0: {0, 1}   t0 c1: {2, 3}
    ///   t1 c0: {0, 2}   t1 c1: {1, 3}
    ///   t2 c0: {0, 3}   t2 c1: {1, 2}
    fn world() -> (EScenarioStore, VideoStore) {
        let layout: Vec<(u64, usize, Vec<u64>)> = vec![
            (0, 0, vec![0, 1]),
            (0, 1, vec![2, 3]),
            (1, 0, vec![0, 2]),
            (1, 1, vec![1, 3]),
            (2, 0, vec![0, 3]),
            (2, 1, vec![1, 2]),
        ];
        let mut escenarios = Vec::new();
        let mut vscenarios = Vec::new();
        for (t, c, people) in &layout {
            let mut e = EScenario::new(CellId::new(*c), Timestamp::new(*t));
            let mut v = VScenario::new(CellId::new(*c), Timestamp::new(*t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.1; 4];
                f[p as usize] = 0.9;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            escenarios.push(e);
            vscenarios.push(v);
        }
        (
            EScenarioStore::from_scenarios(escenarios),
            VideoStore::new(vscenarios, CostModel::free()),
        )
    }

    #[test]
    fn efilter_isolates_the_target() {
        let (store, _) = world();
        let list = efilter_one(&store, Eid::from_u64(0), &EdpConfig::default());
        // t0c0 {0,1} ∩ t1c0 {0,2} = {0}: two scenarios suffice.
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn efilter_cap_is_respected() {
        let (store, _) = world();
        let cfg = EdpConfig {
            max_scenarios_per_eid: Some(1),
            ..EdpConfig::default()
        };
        let list = efilter_one(&store, Eid::from_u64(0), &cfg);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn efilter_of_unknown_eid_is_empty() {
        let (store, _) = world();
        let list = efilter_one(&store, Eid::from_u64(99), &EdpConfig::default());
        assert!(list.is_empty());
    }

    #[test]
    fn edp_matches_everyone_in_the_clean_world() {
        let (store, video) = world();
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let report = match_edp(&store, &video, &targets, &EdpConfig::default());
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert_eq!(
                o.vid.map(Vid::as_u64),
                Some(o.eid.as_u64()),
                "person i's EID must match VID i"
            );
            assert!(o.is_majority());
        }
        assert!(report.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn edp_does_not_share_scenarios_deliberately() {
        let (store, _) = world();
        let cfg = EdpConfig::default();
        // Each of the 4 EIDs picks ~2 scenarios starting from its own
        // chronological scan; unioned they cover most of the pool.
        let total: BTreeSet<ScenarioId> = (0..4)
            .flat_map(|e| efilter_one(&store, Eid::from_u64(e), &cfg))
            .collect();
        assert!(total.len() >= 4, "little overlap: {}", total.len());
    }

    #[test]
    fn parallel_edp_agrees_with_sequential() {
        let (store, video) = world();
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let sequential = match_edp(&store, &video, &targets, &EdpConfig::default());
        let engine = edp_engine(ClusterConfig::default());
        let parallel =
            match_edp_parallel(&engine, &store, &video, &targets, &EdpConfig::default()).unwrap();
        assert_eq!(sequential.outcomes, parallel.outcomes);
        assert_eq!(sequential.lists, parallel.lists);
        assert_eq!(sequential.selected_scenarios, parallel.selected_scenarios);
    }

    #[test]
    fn edp_engine_uses_one_eid_per_mapper() {
        let engine = edp_engine(ClusterConfig::paper_cluster());
        assert_eq!(engine.config().split_size, 1);
        assert_eq!(engine.config().workers, 14);
    }
}
