//! EID set splitting for the practical setting with vague zones
//! (paper §IV-C2, Theorem 4.3).
//!
//! Drifting EIDs are handled by the [`VagueCover`] structure: an EID
//! observed in a scenario's vague zone is kept on both sides of the
//! split. The scenario list attached to each EID only includes scenarios
//! where the EID was observed *inclusively* — "we should try to avoid
//! using EV-Scenarios with the target EID in the vague zone to
//! distinguish that EID".
//!
//! This is the splitting semantics behind every noisy-data result:
//! Tables I–II and the missing-rate robustness of Figs. 10–11 run it
//! (via [`SplitMode::Practical`](crate::refine::SplitMode), the
//! default), and the `ablate-vague` experiment sweeps the vague-zone
//! width it depends on. Its scenario cost relative to the ideal
//! Algorithm 1 is Theorem 4.4's wider bound
//! ([`analysis`](crate::analysis)).

use crate::setsplit::{SelectionStrategy, SetSplitConfig};
use crate::types::ScenarioList;
use ev_core::ids::Eid;
use ev_core::partition::VagueCover;
use ev_core::scenario::{EScenario, ScenarioId, ZoneAttr};
use ev_store::EScenarioStore;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The result of practical EID set splitting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PracticalSplitOutput {
    /// Effective scenarios, in recording order.
    pub recorded: Vec<ScenarioId>,
    /// Per-EID scenario lists (inclusive appearances in recorded
    /// scenarios, plus an anchor when empty).
    pub lists: BTreeMap<Eid, ScenarioList>,
    /// The final cover.
    pub cover: VagueCover,
    /// Scenarios examined, effective or not.
    pub scenarios_examined: usize,
}

impl PracticalSplitOutput {
    /// Whether every requested EID was distinguished.
    #[must_use]
    pub fn fully_split(&self) -> bool {
        self.cover.is_fully_split()
    }

    /// Every distinct scenario the V stage must process.
    #[must_use]
    pub fn selected(&self) -> BTreeSet<ScenarioId> {
        let mut set: BTreeSet<ScenarioId> = self.recorded.iter().copied().collect();
        for list in self.lists.values() {
            set.extend(list.iter().copied());
        }
        set
    }
}

/// Runs practical-setting EID set splitting over `store` for `targets`.
///
/// Distinguished EIDs are pruned from the cover as they emerge (the
/// exclusion step of Theorem 4.1's proof), which lets vague duplicates
/// collapse and later scenarios work on smaller blocks.
#[must_use]
pub fn split_practical(
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    config: &SetSplitConfig,
) -> PracticalSplitOutput {
    let mut cover = VagueCover::new(targets.iter().copied());
    let mut recorded: Vec<ScenarioId> = Vec::new();
    let mut lists: BTreeMap<Eid, ScenarioList> = targets.iter().map(|&e| (e, Vec::new())).collect();
    let mut examined = 0usize;
    let mut pruned: BTreeSet<Eid> = BTreeSet::new();
    let cap = config.max_scenarios.unwrap_or(usize::MAX);

    let apply = |scenario: &EScenario,
                 cover: &mut VagueCover,
                 recorded: &mut Vec<ScenarioId>,
                 lists: &mut BTreeMap<Eid, ScenarioList>,
                 pruned: &mut BTreeSet<Eid>| {
        // Restrict the scenario to the requested universe.
        let mut restricted = EScenario::new(scenario.cell(), scenario.time());
        for (eid, attr) in scenario.iter() {
            if targets.contains(&eid) {
                restricted.insert(eid, attr);
            }
        }
        if restricted.is_empty() {
            return;
        }
        if cover.split_by_scenario(&restricted).effective {
            recorded.push(scenario.id());
            for (eid, attr) in restricted.iter() {
                if attr == ZoneAttr::Inclusive {
                    if let Some(list) = lists.get_mut(&eid) {
                        list.push(scenario.id());
                    }
                }
            }
            // Prune freshly distinguished EIDs so their vague copies stop
            // cluttering other blocks.
            for eid in cover.distinguished() {
                if pruned.insert(eid) {
                    cover.prune_distinguished(eid);
                }
            }
        }
    };

    match config.strategy {
        SelectionStrategy::Chronological | SelectionStrategy::GreedyBalanced => {
            // Greedy gain has no clean analogue under vague semantics;
            // fall back to chronological order for it.
            for scenario in store.iter() {
                if cover.is_fully_split() || examined >= cap {
                    break;
                }
                examined += 1;
                apply(scenario, &mut cover, &mut recorded, &mut lists, &mut pruned);
            }
        }
        SelectionStrategy::RandomTime { seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut times: Vec<_> = store.times().collect();
            times.shuffle(&mut rng);
            'outer: for t in times {
                for scenario in store.at_time(t) {
                    if cover.is_fully_split() || examined >= cap {
                        break 'outer;
                    }
                    examined += 1;
                    apply(scenario, &mut cover, &mut recorded, &mut lists, &mut pruned);
                }
            }
        }
    }

    // Anchor empty lists on any scenario with an inclusive appearance
    // (vague appearances are not trustworthy footage pointers), falling
    // back to a vague appearance if that is all there is.
    let mut pending: BTreeSet<Eid> = lists
        .iter()
        .filter(|(_, l)| l.is_empty())
        .map(|(&e, _)| e)
        .collect();
    if !pending.is_empty() {
        let mut fallback: BTreeMap<Eid, ScenarioId> = BTreeMap::new();
        for scenario in store.iter() {
            if pending.is_empty() {
                break;
            }
            let hits: Vec<(Eid, ZoneAttr)> = scenario
                .iter()
                .filter(|(e, _)| pending.contains(e))
                .collect();
            for (eid, attr) in hits {
                if attr == ZoneAttr::Inclusive {
                    pending.remove(&eid);
                    if let Some(list) = lists.get_mut(&eid) {
                        list.push(scenario.id());
                    }
                } else {
                    fallback.entry(eid).or_insert_with(|| scenario.id());
                }
            }
        }
        for eid in pending {
            if let Some(id) = fallback.get(&eid) {
                if let Some(list) = lists.get_mut(&eid) {
                    list.push(*id);
                }
            }
        }
    }

    let seed = match config.strategy {
        SelectionStrategy::RandomTime { seed } => seed,
        _ => 0,
    };
    crate::setsplit::extend_lists(store, &mut lists, config.min_list_len, seed, true, false);
    crate::setsplit::ensure_unique_against_universe(store, &mut lists, seed, true, false);

    PracticalSplitOutput {
        recorded,
        lists,
        cover,
        scenarios_examined: examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::time::Timestamp;

    fn scenario(cell: usize, time: u64, inclusive: &[u64], vague: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        for &e in inclusive {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        for &e in vague {
            s.insert(Eid::from_u64(e), ZoneAttr::Vague);
        }
        s
    }

    fn targets(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    fn chrono() -> SetSplitConfig {
        SetSplitConfig {
            strategy: SelectionStrategy::Chronological,
            max_scenarios: None,
            min_list_len: 0,
        }
    }

    #[test]
    fn clean_scenarios_split_like_ideal() {
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[2, 3], &[]),
            scenario(1, 1, &[1, 3], &[]),
        ]);
        let out = split_practical(&store, &targets(0..4), &chrono());
        assert!(out.fully_split());
        assert_eq!(out.recorded.len(), 2);
        assert_eq!(out.lists[&Eid::from_u64(3)].len(), 2);
    }

    #[test]
    fn vague_appearances_are_excluded_from_lists() {
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[0], &[1]),
            scenario(1, 1, &[1], &[]),
            scenario(2, 2, &[2], &[]),
        ]);
        let out = split_practical(&store, &targets(0..3), &chrono());
        // EID 1 was vague in the first scenario; only the second (where it
        // is inclusive) may appear in its list.
        for id in &out.lists[&Eid::from_u64(1)] {
            assert_ne!(id.time, Timestamp::new(0));
        }
    }

    #[test]
    fn drifting_eid_is_eventually_distinguished() {
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[0], &[1]),
            scenario(0, 1, &[1], &[]),
            scenario(1, 2, &[2], &[]),
        ]);
        let out = split_practical(&store, &targets(0..3), &chrono());
        assert!(out.fully_split(), "cover: {:?}", out.cover);
    }

    #[test]
    fn all_vague_scenarios_never_split() {
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[], &[0, 1]),
            scenario(1, 1, &[], &[0, 1]),
        ]);
        let out = split_practical(&store, &targets(0..2), &chrono());
        assert!(!out.fully_split());
        assert!(out.recorded.is_empty());
        // Anchors fall back to vague appearances when nothing better
        // exists.
        assert_eq!(out.lists[&Eid::from_u64(0)].len(), 1);
    }

    #[test]
    fn random_time_is_deterministic() {
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[0, 1], &[2]),
            scenario(1, 1, &[2], &[]),
            scenario(2, 2, &[0], &[]),
        ]);
        let cfg = SetSplitConfig {
            strategy: SelectionStrategy::RandomTime { seed: 5 },
            max_scenarios: None,
            min_list_len: 0,
        };
        let a = split_practical(&store, &targets(0..3), &cfg);
        let b = split_practical(&store, &targets(0..3), &cfg);
        assert_eq!(a.recorded, b.recorded);
    }

    #[test]
    fn selected_covers_all_lists() {
        let store = EScenarioStore::from_scenarios(vec![
            scenario(0, 0, &[0], &[1]),
            scenario(1, 1, &[1, 2], &[]),
        ]);
        let out = split_practical(&store, &targets(0..3), &chrono());
        let selected = out.selected();
        for list in out.lists.values() {
            for id in list {
                assert!(selected.contains(id));
            }
        }
    }
}
