//! Anytime VID filtering: the majority vote of [`crate::vfilter`] with
//! certified early termination (ROADMAP item 2).
//!
//! The exact V stage scores every `(candidate, scenario)` pair before
//! voting, yet the vote usually converges long before the scan ends.
//! This module stops early **without changing the answer it certifies**:
//!
//! 1. **Early termination of the majority vote.** Per-scenario votes are
//!    *settled* one by one; once the leading VID's settled-vote margin
//!    exceeds the number of still-unsettled scenarios, no remaining
//!    outcome can overturn it and the scan stops (`converged = true`
//!    means the reported VID provably equals the full-scan VID).
//! 2. **Similarity-bound pruning inside the per-scenario argmax.** For
//!    every pair a cheap `O(dim)` interval `[lb, ub]` brackets the exact
//!    membership probability: `lb` is the similarity to one sampled
//!    detection (the max over detections is at least any one of them),
//!    `ub` comes from the per-scenario bounding box of all detection
//!    features (under the `NormalizedL2`/`NormalizedL1` metrics the
//!    distance to the box lower-bounds the distance to every detection;
//!    `Cosine` falls back to the trivial bound `1`). A candidate whose
//!    upper bound cannot beat a rival's lower bound is *pruned*: it is
//!    never scored exactly.
//! 3. **Bounds for the caller.** A [`PartialMatchOutcome`] carries a
//!    vote-share interval that brackets the exact winner's share at any
//!    stopping point and tightens monotonically as scenarios settle.
//!
//! # Soundness invariants
//!
//! * Interval soundness: `lb ≤ P(VID ∈ S) ≤ ub`, maintained under IEEE
//!   rounding because every operation in the bound computation is the
//!   monotone image of the corresponding operation in
//!   [`FeatureVector::distance`].
//! * A scenario's vote settles for `v` only when `v`'s joint lower bound
//!   beats every present rival's joint upper bound under the canonical
//!   tie-break of `vfilter` (higher score wins, exact ties go to the
//!   lower VID) — so a settled vote equals the exact vote.
//! * `converged == true` only when the settled margin rules out every
//!   rival, so the reported VID equals the exhaustive scan's VID.
//! * `vote_share_low = a_w / m` and `vote_share_high = (a_w + u) / m`
//!   (settled votes for the leader `a_w`, unsettled scenarios `u`,
//!   votable scenarios `m`) bracket the exact winner's share even while
//!   the leader is still provisional.
//!
//! Work that is skipped is also not charged: the cost ledger sees one
//! comparison per *exactly scored* pair, so the paper's V-cost metric
//! reflects the savings. The cheap bounds ride on extraction (they touch
//! only already-extracted galleries) and are deliberately left off the
//! ledger.
//!
//! `--confidence 1.0` with no budget is **not** approximate:
//! [`VFilterConfig`] routes it through the exhaustive scanner, so the
//! exact path stays byte-identical at every thread count.

use crate::types::{MatchOutcome, ScenarioList};
use crate::vfilter::{self, CacheEntry, GalleryCache, VFilterConfig};
use ev_core::feature::{FeatureVector, Metric};
use ev_core::ids::{Eid, Vid};
use ev_store::VideoStore;
use ev_telemetry::{names, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Knobs of the anytime scorer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnytimeConfig {
    /// Target certainty in `[0, 1]` that the reported VID is the exact
    /// winner. The scan stops once its certainty reaches this value.
    /// Certainty is `1.0` exactly when the vote has **converged** (no
    /// unsettled scenario can overturn the leader), so any
    /// `confidence > 0.5` guarantees a converged — provably exact —
    /// VID; values `≤ 0.5` allow stopping earlier with only the
    /// interval guarantee. `1.0` (the default) disables approximation
    /// entirely unless a budget is set.
    pub confidence: f64,
    /// Cap on how many scenarios of the list (prefix, in list order)
    /// may receive *exact* scoring work. Scenarios past the budget
    /// still contribute their cheap bounds. `None` = unlimited.
    pub budget_scenarios: Option<usize>,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            confidence: 1.0,
            budget_scenarios: None,
        }
    }
}

impl AnytimeConfig {
    /// A configuration targeting the given certainty, unlimited budget.
    #[must_use]
    pub fn with_confidence(confidence: f64) -> Self {
        AnytimeConfig {
            confidence,
            budget_scenarios: None,
        }
    }

    /// Caps exact scoring to the first `n` scenarios of each list.
    #[must_use]
    pub fn budget(mut self, n: usize) -> Self {
        self.budget_scenarios = Some(n);
        self
    }

    /// Whether this configuration actually approximates. A
    /// non-approximate configuration (`confidence ≥ 1.0`, no budget)
    /// must run the exhaustive scan so results stay byte-identical to
    /// the exact path.
    #[must_use]
    pub fn approximate(&self) -> bool {
        self.confidence < 1.0 || self.budget_scenarios.is_some()
    }
}

/// The anytime result for one EID: the (possibly provisional) winner,
/// a certified vote-share interval, and how much evidence backs it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialMatchOutcome {
    /// The EID being matched.
    pub eid: Eid,
    /// Current vote leader (`None` when nothing has settled yet).
    /// Provably equal to the exhaustive scan's winner iff
    /// [`converged`](Self::converged).
    pub vid: Option<Vid>,
    /// Lower bound on the exact winner's vote share (`a_w / m`).
    pub vote_share_low: f64,
    /// Upper bound on the exact winner's vote share (`(a_w + u) / m`).
    pub vote_share_high: f64,
    /// Scenarios whose vote is settled (proven equal to the exact
    /// vote), out of [`scenarios_total`](Self::scenarios_total).
    pub scenarios_scored: usize,
    /// Scenarios that can vote at all (non-empty candidate presence) —
    /// the denominator of both share bounds.
    pub scenarios_total: usize,
    /// Whether the winner can no longer be overturned by the unsettled
    /// remainder. Implies `vid` equals the full-scan VID.
    pub converged: bool,
    /// Refinement rounds run before the stop rule fired (`0` = settled
    /// on cheap bounds alone).
    pub rounds: u32,
    /// Candidates never scored exactly anywhere — their similarity
    /// bounds alone proved they could not win.
    pub candidates_pruned: usize,
    /// The materialized [`MatchOutcome`] (conservative fields while
    /// unconverged: `vote_share` is the lower bound, `confidence` and
    /// `margin` use the winner's pessimistic joint bound). When the
    /// refinement ran to full exhaustion this is bit-identical to the
    /// exhaustive scan's outcome.
    pub outcome: MatchOutcome,
}

/// Per-scenario bounding box over all detection features, used for the
/// cheap membership upper bound. `None` when the scenario is empty or
/// its detections disagree on dimensionality (the exact scorer maps
/// that error case to probability `0`).
///
/// Boxes are a property of the gallery alone, so [`CacheEntry`]
/// memoizes them (see [`CacheEntry::bbox`]): across the EIDs of a batch
/// the box cost amortizes to once per scenario, just like extraction
/// and grouping.
pub(crate) struct EntryBox {
    dim: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

pub(crate) fn entry_box(entry: &CacheEntry) -> Option<EntryBox> {
    let dets = entry.scenario.detections();
    let first = dets.first()?;
    let dim = first.feature.dim();
    let mut lo = first.feature.components().to_vec();
    let mut hi = lo.clone();
    for d in &dets[1..] {
        if d.feature.dim() != dim {
            return None;
        }
        // f64::min/max are exact (no rounding), so the box stays a true
        // enclosure; iterator zips keep the loop vectorizable.
        for ((l, h), &c) in lo.iter_mut().zip(hi.iter_mut()).zip(d.feature.components()) {
            *l = l.min(c);
            *h = h.max(c);
        }
    }
    Some(EntryBox { dim, lo, hi })
}

/// Cheap `O(dim)` bounds on `P(VID ∈ S) = max_i sim(rep, f_i)`.
///
/// * `lb`: similarity to one sampled detection — the candidate's own
///   first detection when it appears in the scenario (a near-tight
///   sample), detection 0 otherwise. A max is at least any element, and
///   the sample is computed by the very code the exact scorer maxes
///   over, so `lb ≤ exact` holds bitwise.
/// * `ub`: box bound. For every detection `y` and dimension `i`,
///   `|x_i − y_i| ≥ g_i = max(0, lo_i − x_i, x_i − hi_i)`; float
///   subtraction, squaring, ordered summation, `sqrt`, division and
///   `min` are all monotone, so the computed box distance never exceeds
///   the computed distance to any detection and `ub ≥ exact` holds
///   bitwise. `Cosine` has no useful box bound and returns `1.0`.
fn cheap_bounds(
    rep: &FeatureVector,
    entry: &CacheEntry,
    bbox: &Option<EntryBox>,
    own_first: Option<usize>,
    metric: Metric,
) -> (f64, f64) {
    let dets = entry.scenario.detections();
    if dets.is_empty() {
        return (0.0, 0.0); // exact membership of an empty scenario is 0
    }
    let Some(bb) = bbox else {
        // Mixed dimensionalities: the exact scan's similarity errors and
        // `unwrap_or(0.0)` maps the whole membership to 0.
        return (0.0, 0.0);
    };
    if bb.dim != rep.dim() {
        return (0.0, 0.0); // same error path: exact value is 0
    }
    let sample = own_first.unwrap_or(0);
    let lb = rep.similarity(&dets[sample].feature, metric).unwrap_or(0.0);
    // The geometric core lives in `ev_core::kernel` next to the exact
    // distance formulas (one home per metric, so bounds and exact
    // scores cannot drift); `Cosine` has no useful box bound and comes
    // back as distance 0 — the vacuous `ub = 1.0`.
    let ub = 1.0 - ev_core::kernel::box_bound_distance(metric, rep.components(), &bb.lo, &bb.hi);
    (lb, ub.max(lb))
}

/// The all-zero partial outcome for an EID with no usable evidence.
fn no_evidence(eid: Eid) -> PartialMatchOutcome {
    PartialMatchOutcome {
        eid,
        vid: None,
        vote_share_low: 0.0,
        vote_share_high: 0.0,
        scenarios_scored: 0,
        scenarios_total: 0,
        converged: true, // nothing left that could change the answer
        rounds: 0,
        candidates_pruned: 0,
        outcome: MatchOutcome::no_evidence(eid),
    }
}

/// Anytime counterpart of [`vfilter::filter_one`]: scores `eid` against
/// its scenario list under `config.anytime` (defaults apply when
/// `None`) and returns the bounded partial result.
#[must_use]
pub fn partial_filter_one(
    eid: Eid,
    list: &ScenarioList,
    video: &VideoStore,
    config: &VFilterConfig,
    excluded: &BTreeSet<Vid>,
) -> PartialMatchOutcome {
    partial_filter_one_instrumented(
        eid,
        list,
        video,
        config,
        excluded,
        &mut GalleryCache::new(),
        Telemetry::disabled(),
    )
}

/// [`partial_filter_one`] against a shared cache and telemetry handle —
/// the entry point [`vfilter::filter_one_instrumented`] delegates to
/// when the configuration is approximate.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn partial_filter_one_instrumented(
    eid: Eid,
    list: &ScenarioList,
    video: &VideoStore,
    config: &VFilterConfig,
    excluded: &BTreeSet<Vid>,
    cache: &mut GalleryCache,
    tel: &Telemetry,
) -> PartialMatchOutcome {
    let at = config.anytime.unwrap_or_default();
    let (entries, representatives) = vfilter::candidate_model(list, video, excluded, cache);
    if entries.is_empty() || representatives.is_empty() {
        return no_evidence(eid);
    }
    if tel.counters_on() {
        // Parity with the exact path's candidate accounting.
        tel.registry()
            .counter(names::VFILTER_CANDIDATES_SCORED)
            .add(representatives.len() as u64);
    }

    let cands: Vec<(Vid, &FeatureVector)> = representatives.iter().map(|(&v, r)| (v, r)).collect();
    let n_c = cands.len();
    let n_e = entries.len();

    // Interval state per (candidate, scenario): ln-space bounds on the
    // membership probability, refined to the exact value on demand.
    let mut lnp_lo = vec![vec![0.0f64; n_e]; n_c];
    let mut lnp_hi = vec![vec![0.0f64; n_e]; n_c];
    let mut refined = vec![vec![false; n_e]; n_c];
    let mut evals = vec![0usize; n_c];
    let mut entry_touched = vec![false; n_e];
    // Which candidates are present (votable) per scenario; `m` counts
    // the scenarios that can vote at all. Presence is determined by the
    // gallery, not by scoring, so `m` is known upfront and the share
    // denominators never move. The one `groups` lookup per pair serves
    // both the presence set and the lower bound's own-first sample.
    let mut present: Vec<Vec<usize>> = vec![Vec::new(); n_e];
    for (ci, &(vid, rep)) in cands.iter().enumerate() {
        for (ei, e) in entries.iter().enumerate() {
            let own = e.groups.get(&vid).and_then(|g| g.first()).copied();
            if own.is_some() {
                present[ei].push(ci);
            }
            let (lb, ub) = cheap_bounds(rep, e, e.bbox(), own, config.metric);
            lnp_lo[ci][ei] = lb.ln();
            lnp_hi[ci][ei] = ub.ln();
        }
    }
    let m = present.iter().filter(|p| !p.is_empty()).count();
    if m == 0 {
        return no_evidence(eid);
    }

    let budget_n = at.budget_scenarios.unwrap_or(usize::MAX).min(n_e);
    let mut settled: Vec<Option<usize>> = vec![None; n_e];
    let mut j_lo = vec![0.0f64; n_c];
    let mut j_hi = vec![0.0f64; n_c];
    let mut counts = vec![0usize; n_c];
    let mut unsettled = m;
    let mut rounds: u32 = 0;

    let (leader, conv) = loop {
        // Joint interval per candidate: ordered fold over the list,
        // exactly the accumulation the exhaustive scan performs — so a
        // fully refined row reproduces the exact log-joint bitwise.
        for ci in 0..n_c {
            j_lo[ci] = lnp_lo[ci].iter().fold(0.0, |a, &b| a + b);
            j_hi[ci] = lnp_hi[ci].iter().fold(0.0, |a, &b| a + b);
        }

        // Settle votes: `v` takes a scenario once its joint lower bound
        // beats every present rival's upper bound under the canonical
        // `vfilter::beats` tie-break — then `v` is the exact argmax no
        // matter where inside their intervals the true joints lie.
        // `beats` is a strict total order on `(score, vid)` keys, so
        // "beats every rival's optimistic key" ⇔ "beats the *maximum*
        // rival optimistic key": a top-2 scan (top-2 so a candidate can
        // exclude itself) replaces the quadratic pairwise check.
        for ei in 0..n_e {
            if settled[ei].is_some() || present[ei].is_empty() {
                continue;
            }
            let mut hi1: Option<usize> = None;
            let mut hi2: Option<usize> = None;
            for &ci in &present[ei] {
                if hi1.is_none_or(|h| vfilter::beats(j_hi[h], cands[h].0, j_hi[ci], cands[ci].0)) {
                    hi2 = hi1;
                    hi1 = Some(ci);
                } else if hi2
                    .is_none_or(|h| vfilter::beats(j_hi[h], cands[h].0, j_hi[ci], cands[ci].0))
                {
                    hi2 = Some(ci);
                }
            }
            for &ci in &present[ei] {
                let rival = if hi1 == Some(ci) { hi2 } else { hi1 };
                let wins = match rival {
                    None => true, // sole candidate: the vote is its own
                    Some(r) => vfilter::beats(j_hi[r], cands[r].0, j_lo[ci], cands[ci].0),
                };
                if wins {
                    // At most one candidate can beat everyone else's
                    // optimistic key, so first-match order is immaterial.
                    settled[ei] = Some(ci);
                    counts[ci] += 1;
                    unsettled -= 1;
                    break;
                }
            }
        }

        // Leader and the overtake-margin convergence check: converged
        // iff even granting every unsettled vote to the best rival
        // cannot beat the leader (ties resolved toward the lower VID,
        // as everywhere else).
        let mut leader: Option<usize> = None;
        for ci in 0..n_c {
            if counts[ci] == 0 {
                continue;
            }
            match leader {
                Some(l)
                    if !vfilter::beats(
                        counts[l] as f64,
                        cands[l].0,
                        counts[ci] as f64,
                        cands[ci].0,
                    ) => {}
                _ => leader = Some(ci),
            }
        }
        let conv = match leader {
            None => false,
            Some(w) => (0..n_c).all(|v| {
                v == w
                    || counts[w] > counts[v] + unsettled
                    || (counts[w] == counts[v] + unsettled && cands[w].0 < cands[v].0)
            }),
        };
        let certainty = if conv {
            1.0
        } else {
            match leader {
                None => 0.0,
                Some(w) => {
                    let max_rival = (0..n_c)
                        .filter(|&v| v != w)
                        .map(|v| counts[v] + unsettled)
                        .max()
                        .unwrap_or(0);
                    if max_rival == 0 {
                        1.0
                    } else {
                        counts[w] as f64 / (counts[w] + max_rival) as f64
                    }
                }
            }
        };
        if certainty >= at.confidence || unsettled == 0 {
            break (leader, conv);
        }

        // Refinement round: every *active* candidate exactly scores a
        // few more scenarios (widest interval first, within budget).
        // Active =
        // present in some unsettled scenario and not dominated there by
        // a rival's bounds; dominated candidates are pruned — their
        // upper bound already proves they cannot win, and by
        // transitivity the eventual winner's lower bound will clear
        // them without further work.
        // Same top-2 trick as the settle pass, on the pessimistic keys:
        // a candidate is dominated iff the best rival *pessimistic* key
        // beats its own optimistic key.
        let mut active = vec![false; n_c];
        for ei in 0..n_e {
            if settled[ei].is_some() || present[ei].is_empty() {
                continue;
            }
            let mut lo1: Option<usize> = None;
            let mut lo2: Option<usize> = None;
            for &ci in &present[ei] {
                if lo1.is_none_or(|l| vfilter::beats(j_lo[l], cands[l].0, j_lo[ci], cands[ci].0)) {
                    lo2 = lo1;
                    lo1 = Some(ci);
                } else if lo2
                    .is_none_or(|l| vfilter::beats(j_lo[l], cands[l].0, j_lo[ci], cands[ci].0))
                {
                    lo2 = Some(ci);
                }
            }
            for &ci in &present[ei] {
                let rival = if lo1 == Some(ci) { lo2 } else { lo1 };
                let dominated = rival
                    .is_some_and(|r| vfilter::beats(j_hi[ci], cands[ci].0, j_lo[r], cands[r].0));
                if !dominated {
                    active[ci] = true;
                }
            }
        }
        // Widest-interval-first: of every active `(candidate, entry)`
        // pair, exactly score the one whose cheap bounds leave the most
        // ln-space slack — that is where an exact value tightens a
        // joint interval the most (for a rival, typically a scenario it
        // is absent from: the optimistic box bound hides a large
        // penalty there). One pair per round, globally: the membership
        // evaluations are the expensive unit, the bound refold above is
        // plain additions, and a well-bounded candidate (the usual
        // leader, whose self-match samples are near-tight) must not
        // burn evaluations just because a rival still needs them.
        let mut best: Option<(f64, usize, usize)> = None;
        for ci in 0..n_c {
            if !active[ci] {
                continue;
            }
            for e in 0..budget_n {
                if refined[ci][e] {
                    continue;
                }
                let gap = lnp_hi[ci][e] - lnp_lo[ci][e];
                // `-inf - -inf` is NaN (a pair known to be exactly 0):
                // nothing to learn, so order it last.
                let gap = if gap.is_nan() { -1.0 } else { gap };
                // Ties keep the earliest (candidate, entry) pair.
                if best.is_none_or(|(bg, _, _)| gap > bg) {
                    best = Some((gap, ci, e));
                }
            }
        }
        let Some((_, ci, ei)) = best else {
            // Budget exhausted: nothing left that may be scored.
            break (leader, conv);
        };
        // One charged comparison per exactly scored pair — the same
        // unit the exhaustive scan charges, so the ledger shows the
        // work actually done.
        video.charge_comparison();
        // The configured kernel scores here exactly as in the
        // exhaustive scan — every mode returns the same bits, so the
        // refined value can replace both bounds at once.
        let p = vfilter::score_membership(cands[ci].1, entries[ei], config, tel);
        let lp = p.ln();
        lnp_lo[ci][ei] = lp;
        lnp_hi[ci][ei] = lp;
        refined[ci][ei] = true;
        evals[ci] += 1;
        entry_touched[ei] = true;
        rounds += 1;
    };

    let candidates_pruned = evals.iter().filter(|&&e| e == 0).count();
    if tel.counters_on() {
        let registry = tel.registry();
        let touched = entry_touched.iter().filter(|&&t| t).count();
        registry
            .counter(names::ANYTIME_SCENARIOS_SKIPPED)
            .add((n_e - touched) as u64);
        registry
            .counter(names::ANYTIME_CANDIDATES_PRUNED)
            .add(candidates_pruned as u64);
        registry
            .histogram(names::ANYTIME_CONVERGENCE_ROUNDS)
            .record(u64::from(rounds));
    }

    let fully_refined = refined.iter().all(|row| row.iter().all(|&r| r));
    let outcome = if fully_refined {
        // Exhaustion: every pair holds its exact value, so materialize
        // the outcome with the exhaustive scan's own operations — the
        // result is bit-identical to `vfilter::filter_one`.
        let log_joint: BTreeMap<Vid, f64> = cands
            .iter()
            .enumerate()
            .map(|(ci, &(v, _))| (v, j_lo[ci]))
            .collect();
        let mut votes: Vec<Vid> = Vec::new();
        for e in &entries {
            let choice = vfilter::scenario_vote(
                e.scenario
                    .vids()
                    .filter(|v| representatives.contains_key(v)),
                |v| log_joint[&v],
            );
            if let Some(v) = choice {
                votes.push(v);
            }
        }
        let mut tally: BTreeMap<Vid, usize> = BTreeMap::new();
        for &v in &votes {
            *tally.entry(v).or_insert(0) += 1;
        }
        // Zero votes is the empty-gallery/no-candidate edge: it flows
        // to the explicit NoEvidence outcome, exactly as the exhaustive
        // scan's, instead of aborting the pipeline.
        match vfilter::majority_winner(&tally) {
            None => MatchOutcome::no_evidence(eid),
            Some((winner, count)) => {
                let confidence = log_joint[&winner].exp();
                let margin = if log_joint.len() > 1 {
                    let runner_up = log_joint
                        .iter()
                        .filter(|(&v, _)| v != winner)
                        .map(|(_, &lp)| lp)
                        .fold(f64::NEG_INFINITY, f64::max);
                    confidence - runner_up.exp()
                } else {
                    1.0
                };
                MatchOutcome {
                    eid,
                    vid: Some(winner),
                    vote_share: count as f64 / votes.len() as f64,
                    confidence,
                    margin,
                    votes,
                }
            }
        }
    } else {
        match leader {
            None => MatchOutcome::unmatched(eid),
            Some(w) => {
                let votes: Vec<Vid> = settled
                    .iter()
                    .filter_map(|s| s.map(|ci| cands[ci].0))
                    .collect();
                let confidence = j_lo[w].exp();
                let margin = if n_c > 1 {
                    let rival = (0..n_c)
                        .filter(|&v| v != w)
                        .map(|v| j_hi[v])
                        .fold(f64::NEG_INFINITY, f64::max);
                    confidence - rival.exp()
                } else {
                    1.0
                };
                MatchOutcome {
                    eid,
                    vid: Some(cands[w].0),
                    vote_share: counts[w] as f64 / m as f64, // the sound lower bound
                    confidence,
                    margin,
                    votes,
                }
            }
        }
    };

    let (low, high) = match leader {
        Some(w) => (
            counts[w] as f64 / m as f64,
            (counts[w] + unsettled) as f64 / m as f64,
        ),
        None => (0.0, 1.0),
    };
    PartialMatchOutcome {
        eid,
        vid: outcome.vid,
        vote_share_low: low,
        vote_share_high: high,
        scenarios_scored: m - unsettled,
        scenarios_total: m,
        converged: conv,
        rounds,
        candidates_pruned,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, ScenarioId, VScenario};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    fn fv(v: &[f64]) -> FeatureVector {
        FeatureVector::new(v.to_vec()).unwrap()
    }

    fn vscenario(cell: usize, time: u64, people: &[(u64, &[f64])]) -> VScenario {
        let mut s = VScenario::new(CellId::new(cell), Timestamp::new(time));
        for &(vid, f) in people {
            s.push(Detection {
                vid: Vid::new(vid),
                feature: fv(f),
            });
        }
        s
    }

    fn sid(cell: usize, time: u64) -> ScenarioId {
        ScenarioId::new(Timestamp::new(time), CellId::new(cell))
    }

    /// A clearly separable corpus: VID 1 shows a stable appearance
    /// everywhere (its mean representative matches its detections
    /// almost perfectly), while VID 2 drifts, so its representative
    /// matches none of its own detections and its joint score stays
    /// well below VID 1's.
    fn separable_video() -> (VideoStore, ScenarioList) {
        let drift: [[f64; 2]; 8] = [
            [0.10, 0.10],
            [0.20, 0.15],
            [0.15, 0.25],
            [0.30, 0.10],
            [0.10, 0.30],
            [0.25, 0.25],
            [0.05, 0.20],
            [0.20, 0.05],
        ];
        let scenarios: Vec<VScenario> = (0..8)
            .map(|i| vscenario(i, i as u64, &[(1, &[0.9, 0.9]), (2, &drift[i])]))
            .collect();
        let list = (0..8).map(|i| sid(i, i as u64)).collect();
        (
            VideoStore::new(
                scenarios,
                CostModel {
                    e_record: 0,
                    v_extraction: 0,
                    v_comparison: 1,
                },
            ),
            list,
        )
    }

    fn approx_config(confidence: f64) -> VFilterConfig {
        VFilterConfig {
            anytime: Some(AnytimeConfig::with_confidence(confidence)),
            ..VFilterConfig::default()
        }
    }

    #[test]
    fn approximate_is_off_by_default() {
        assert!(!AnytimeConfig::default().approximate());
        assert!(AnytimeConfig::with_confidence(0.95).approximate());
        assert!(AnytimeConfig::default().budget(3).approximate());
        assert!(!AnytimeConfig::with_confidence(1.0).approximate());
    }

    #[test]
    fn converged_result_matches_the_exact_winner() {
        let (video, list) = separable_video();
        let exact = vfilter::filter_one(
            Eid::from_u64(1),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        let partial = partial_filter_one(
            Eid::from_u64(1),
            &list,
            &video,
            &approx_config(0.95),
            &BTreeSet::new(),
        );
        assert!(partial.converged);
        assert_eq!(partial.vid, exact.vid);
        assert_eq!(partial.vid, Some(Vid::new(1)));
        assert!(partial.vote_share_low <= exact.vote_share + 1e-12);
        assert!(partial.vote_share_high >= exact.vote_share - 1e-12);
    }

    #[test]
    fn separable_corpus_skips_exact_work() {
        // Tight clusters settle on bounds alone: the ledger must show
        // strictly fewer charged comparisons than the exhaustive scan.
        let (video, list) = separable_video();
        let _ = vfilter::filter_one(
            Eid::from_u64(1),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        let exact_units = video.ledger().v_units();

        let (video2, list2) = separable_video();
        let partial = partial_filter_one(
            Eid::from_u64(1),
            &list2,
            &video2,
            &approx_config(0.95),
            &BTreeSet::new(),
        );
        assert!(partial.converged);
        assert!(
            video2.ledger().v_units() < exact_units,
            "anytime {} should charge less than exact {}",
            video2.ledger().v_units(),
            exact_units
        );
    }

    #[test]
    fn via_vfilter_delegation_share_is_the_lower_bound() {
        let (video, list) = separable_video();
        let out = vfilter::filter_one(
            Eid::from_u64(1),
            &list,
            &video,
            &approx_config(0.95),
            &BTreeSet::new(),
        );
        assert_eq!(out.vid, Some(Vid::new(1)));
        assert!(!out.vote_share.is_nan());
        assert!(out.is_majority(), "converged lower bound is a majority");
    }

    #[test]
    fn budget_zero_returns_bounds_only() {
        let (video, list) = separable_video();
        let cfg = VFilterConfig {
            anytime: Some(AnytimeConfig::with_confidence(0.95).budget(0)),
            ..VFilterConfig::default()
        };
        let partial = partial_filter_one(Eid::from_u64(1), &list, &video, &cfg, &BTreeSet::new());
        // No exact scoring is allowed; the interval must still bracket
        // the exact share and never report false convergence... unless
        // the bounds alone settled it, which is legitimate.
        assert!(partial.vote_share_low <= partial.vote_share_high);
        assert!(partial.vote_share_high <= 1.0 + 1e-12);
        if !partial.converged {
            assert!(partial.scenarios_scored < partial.scenarios_total);
        }
    }

    #[test]
    fn empty_list_is_no_evidence_and_converged() {
        let (video, _) = separable_video();
        let partial = partial_filter_one(
            Eid::from_u64(1),
            &vec![],
            &video,
            &approx_config(0.5),
            &BTreeSet::new(),
        );
        assert!(partial.converged);
        assert!(partial.vid.is_none());
        assert!(partial.outcome.is_no_evidence());
        assert_eq!(partial.vote_share_high, 0.0);
    }

    #[test]
    fn ambiguous_corpus_runs_to_exhaustion_bit_identically() {
        // Two candidates with identical features: no bound can separate
        // them, so the refinement must exhaust and reproduce the exact
        // outcome bit for bit (ties broken toward the lower VID).
        let scenarios = vec![
            vscenario(0, 0, &[(7, &[0.5, 0.5]), (4, &[0.5, 0.5])]),
            vscenario(1, 1, &[(4, &[0.5, 0.5]), (7, &[0.5, 0.5])]),
        ];
        let list: ScenarioList = vec![sid(0, 0), sid(1, 1)];
        let video = VideoStore::new(scenarios.clone(), CostModel::free());
        let exact = vfilter::filter_one(
            Eid::from_u64(3),
            &list,
            &video,
            &VFilterConfig::default(),
            &BTreeSet::new(),
        );
        let video2 = VideoStore::new(scenarios, CostModel::free());
        let partial = partial_filter_one(
            Eid::from_u64(3),
            &list,
            &video2,
            &approx_config(0.95),
            &BTreeSet::new(),
        );
        assert_eq!(partial.outcome, exact);
        assert_eq!(partial.vid, Some(Vid::new(4)));
    }

    #[test]
    fn bounds_bracket_membership_on_random_galleries() {
        // Deterministic pseudo-random sweep: the cheap interval must
        // bracket the exact membership for every metric.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..200 {
            let dim = 1 + (trial % 5);
            let n_det = 1 + (trial % 4);
            let mut s = VScenario::new(CellId::new(0), Timestamp::new(0));
            for v in 0..n_det {
                let f: Vec<f64> = (0..dim).map(|_| next()).collect();
                s.push(Detection {
                    vid: Vid::new(v as u64),
                    feature: fv(&f),
                });
            }
            let entry = CacheEntry::new(std::sync::Arc::new(s), BTreeMap::new());
            let bbox = entry_box(&entry);
            let rep_f: Vec<f64> = (0..dim).map(|_| next()).collect();
            let rep = fv(&rep_f);
            for metric in [Metric::NormalizedL2, Metric::NormalizedL1, Metric::Cosine] {
                let exact =
                    ev_vision::reid::membership_probability(&rep, &entry.scenario, metric).unwrap();
                let (lb, ub) = cheap_bounds(&rep, &entry, &bbox, None, metric);
                assert!(lb <= exact, "{metric:?}: lb {lb} > exact {exact}");
                assert!(ub >= exact, "{metric:?}: ub {ub} < exact {exact}");
            }
        }
    }
}
