//! MapReduce parallelization of EV-Matching (paper §V, Algorithm 3).
//!
//! **Set splitting** runs as iterations of two chained jobs on the
//! [`ev_mapreduce`] engine. Each iteration:
//!
//! 1. *Preprocess* — pick a random unused timestamp, select the
//!    E-Scenarios snapshotted there that touch the requested EIDs, and
//!    put them next to the current partition blocks as a list of
//!    identified EID sets (paper Fig. 4).
//! 2. *Map* — for every EID of every set, emit `(eid, set id)`; the
//!    engine's shuffle groups by EID.
//! 3. *Reduce* — each EID's set-id list is its *membership signature*;
//!    emit `(signature, eid)`.
//! 4. *Merge* — a second shuffle groups EIDs by signature; each group is
//!    one block of the refined partition. Scenario ids on which sibling
//!    signatures differ are the iteration's *effective* scenarios.
//!
//! **VID filtering** parallelizes as the paper describes (§V-C): one job
//! extracts features for all selected V-Scenarios ("these visual
//! operations require no data dependency"), a second job routes each
//! EID's scenario list to one mapper for comparison. Exclusion-based
//! conflict resolution runs as a driver-side fixup afterwards, since
//! parallel mappers cannot see each other's matches.

use crate::setsplit::{attach_anchors, SplitOutput};
use crate::types::{IndexCounters, MatchOutcome, MatchReport, ScenarioList, StageTimings};
use crate::vfilter::{filter_one, VFilterConfig};
use ev_core::ids::{Eid, Vid};
use ev_core::partition::EidPartition;
use ev_core::scenario::ScenarioId;
use ev_mapreduce::{Emitter, JobError, JobMetrics, MapReduce, Mapper, Reducer};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Identifier of an EID set flowing through a splitting iteration: either
/// a block of the current partition or an E-Scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SetId {
    /// The `i`-th block of the current partition.
    Block(usize),
    /// An E-Scenario selected this iteration.
    Scenario(ScenarioId),
}

/// One identified EID set (the unit of work of the map stage).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EidSetRecord {
    /// The set's identity.
    pub id: SetId,
    /// Its member EIDs (already restricted to the requested universe).
    pub eids: Vec<Eid>,
}

/// Configuration of the parallel splitting driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelSplitConfig {
    /// Seed for the random timestamp order.
    pub seed: u64,
    /// Cap on splitting iterations (`None` = until the timestamps run
    /// out or the partition is fully split).
    pub max_iterations: Option<usize>,
}

/// Map stage of Algorithm 3: emit one `(eid, set id)` pair per
/// membership.
struct MembershipMapper;
impl Mapper<EidSetRecord> for MembershipMapper {
    type Key = Eid;
    type Value = SetId;
    fn map(&self, set: &EidSetRecord, out: &mut Emitter<Eid, SetId>) {
        for &eid in &set.eids {
            out.emit(eid, set.id);
        }
    }
}

/// Reduce stage: canonicalize each EID's set-id list into its signature.
struct SignatureReducer;
impl Reducer<Eid, SetId> for SignatureReducer {
    type Output = (Vec<SetId>, Eid);
    fn reduce(&self, key: &Eid, values: &[SetId]) -> Vec<(Vec<SetId>, Eid)> {
        let mut signature: Vec<SetId> = values.to_vec();
        signature.sort_unstable();
        signature.dedup();
        vec![(signature, *key)]
    }
}

/// Merge-job map stage: key by signature.
struct SignatureMapper;
impl Mapper<(Vec<SetId>, Eid)> for SignatureMapper {
    type Key = Vec<SetId>;
    type Value = Eid;
    fn map(&self, record: &(Vec<SetId>, Eid), out: &mut Emitter<Vec<SetId>, Eid>) {
        out.emit(record.0.clone(), record.1);
    }
}

/// Merge-job reduce stage: a signature group is a new partition block.
struct BlockReducer;
impl Reducer<Vec<SetId>, Eid> for BlockReducer {
    type Output = (Vec<SetId>, Vec<Eid>);
    fn reduce(&self, key: &Vec<SetId>, values: &[Eid]) -> Vec<(Vec<SetId>, Vec<Eid>)> {
        let mut eids = values.to_vec();
        eids.sort_unstable();
        eids.dedup();
        vec![(key.clone(), eids)]
    }
}

/// Runs EID set splitting as iterated MapReduce jobs (paper Algorithm 3).
///
/// Post-processing (anchors, padding, uniqueness) is answered from the
/// store's inverted index; engine job metrics accumulate into `metrics`.
///
/// # Errors
///
/// Propagates [`JobError`] from the engine.
pub fn parallel_split(
    engine: &MapReduce,
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    config: &ParallelSplitConfig,
) -> Result<SplitOutput, JobError> {
    parallel_split_impl(
        engine,
        store,
        targets,
        config,
        false,
        &mut JobMetrics::default(),
    )
}

/// Scan-based reference twin of [`parallel_split`]: identical driver, but
/// post-processing walks the store instead of the index. Kept for the
/// equivalence tests and benches.
///
/// # Errors
///
/// Propagates [`JobError`] from the engine.
pub fn parallel_split_scan(
    engine: &MapReduce,
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    config: &ParallelSplitConfig,
) -> Result<SplitOutput, JobError> {
    parallel_split_impl(
        engine,
        store,
        targets,
        config,
        true,
        &mut JobMetrics::default(),
    )
}

pub(crate) fn parallel_split_impl(
    engine: &MapReduce,
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    config: &ParallelSplitConfig,
    scan: bool,
    metrics: &mut JobMetrics,
) -> Result<SplitOutput, JobError> {
    let mut blocks: Vec<BTreeSet<Eid>> = if targets.is_empty() {
        Vec::new()
    } else {
        vec![targets.clone()]
    };
    let mut recorded: Vec<ScenarioId> = Vec::new();
    let mut lists: BTreeMap<Eid, ScenarioList> = targets.iter().map(|&e| (e, Vec::new())).collect();
    let mut examined = 0usize;

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut times: Vec<_> = store.times().collect();
    times.shuffle(&mut rng);
    let max_iters = config.max_iterations.unwrap_or(usize::MAX);

    for (iteration, &t) in times.iter().enumerate() {
        if iteration >= max_iters || blocks.iter().all(|b| b.len() == 1) {
            break;
        }

        // ---- preprocess ----
        // Singleton blocks are already distinguished; only live blocks
        // enter the job.
        let (live, done): (Vec<BTreeSet<Eid>>, Vec<BTreeSet<Eid>>) =
            blocks.into_iter().partition(|b| b.len() > 1);
        if live.is_empty() {
            blocks = done;
            break;
        }
        let live_universe: BTreeSet<Eid> = live.iter().flatten().copied().collect();
        let mut inputs: Vec<EidSetRecord> = Vec::new();
        let mut scenario_members: BTreeMap<ScenarioId, Vec<Eid>> = BTreeMap::new();
        for scenario in store.at_time(t) {
            examined += 1;
            // Only confident (inclusive-zone) appearances drive splitting
            // and scenario lists; a drifted (vague) reading may point at
            // the wrong cell's footage (paper §IV-C2).
            let members: Vec<Eid> = scenario
                .iter()
                .filter(|(e, attr)| {
                    *attr == ev_core::scenario::ZoneAttr::Inclusive && live_universe.contains(e)
                })
                .map(|(e, _)| e)
                .collect();
            if !members.is_empty() {
                scenario_members.insert(scenario.id(), members.clone());
                inputs.push(EidSetRecord {
                    id: SetId::Scenario(scenario.id()),
                    eids: members,
                });
            }
        }
        if inputs.is_empty() {
            blocks = live.into_iter().chain(done).collect();
            continue;
        }
        for (i, block) in live.iter().enumerate() {
            inputs.push(EidSetRecord {
                id: SetId::Block(i),
                eids: block.iter().copied().collect(),
            });
        }

        // ---- map + reduce: signatures ----
        let signatures = engine.run(inputs, &MembershipMapper, &SignatureReducer)?;
        metrics.absorb(&signatures.metrics);
        // ---- merge: group by signature ----
        let merged = engine.run(signatures.output, &SignatureMapper, &BlockReducer)?;
        metrics.absorb(&merged.metrics);

        // Rebuild the partition and find the effective scenarios.
        let mut children_of: BTreeMap<usize, Vec<&Vec<SetId>>> = BTreeMap::new();
        let mut new_blocks: Vec<BTreeSet<Eid>> = done;
        for (signature, eids) in &merged.output {
            let block_id = signature.iter().find_map(|s| match s {
                SetId::Block(i) => Some(*i),
                SetId::Scenario(_) => None,
            });
            if let Some(b) = block_id {
                children_of.entry(b).or_default().push(signature);
            }
            new_blocks.push(eids.iter().copied().collect());
        }
        let mut effective: BTreeSet<ScenarioId> = BTreeSet::new();
        for children in children_of.values() {
            if children.len() < 2 {
                continue; // the block did not split
            }
            let union: BTreeSet<ScenarioId> = children
                .iter()
                .flat_map(|sig| sig.iter())
                .filter_map(|s| match s {
                    SetId::Scenario(id) => Some(*id),
                    SetId::Block(_) => None,
                })
                .collect();
            for id in union {
                let holders = children
                    .iter()
                    .filter(|sig| sig.contains(&SetId::Scenario(id)))
                    .count();
                if holders > 0 && holders < children.len() {
                    effective.insert(id);
                }
            }
        }
        for id in effective {
            recorded.push(id);
            if let Some(members) = scenario_members.get(&id) {
                for &eid in members {
                    if let Some(list) = lists.get_mut(&eid) {
                        list.push(id);
                    }
                }
            }
        }
        blocks = new_blocks;
    }

    attach_anchors(store, &mut lists, scan);
    crate::setsplit::extend_lists(store, &mut lists, 3, config.seed, true, scan);
    crate::setsplit::ensure_unique_against_universe(store, &mut lists, config.seed, true, scan);
    let partition = EidPartition::from_blocks(blocks)
        .expect("merge output blocks are disjoint by construction");
    Ok(SplitOutput {
        recorded,
        lists,
        partition,
        scenarios_examined: examined,
    })
}

/// Extraction job mapper: force feature extraction of one V-Scenario.
struct ExtractionMapper<'a> {
    video: &'a VideoStore,
}
impl Mapper<ScenarioId> for ExtractionMapper<'_> {
    type Key = ScenarioId;
    type Value = usize;
    fn map(&self, id: &ScenarioId, out: &mut Emitter<ScenarioId, usize>) {
        let detections = self.video.extract(*id).map_or(0, |s| s.len());
        out.emit(*id, detections);
    }
}

struct CountReducer;
impl Reducer<ScenarioId, usize> for CountReducer {
    type Output = (ScenarioId, usize);
    fn reduce(&self, key: &ScenarioId, values: &[usize]) -> Vec<(ScenarioId, usize)> {
        vec![(*key, values.iter().copied().max().unwrap_or(0))]
    }
}

/// Comparison job mapper: one EID's whole scenario list per record.
struct ComparisonMapper<'a> {
    video: &'a VideoStore,
    config: VFilterConfig,
}
impl Mapper<(Eid, ScenarioList)> for ComparisonMapper<'_> {
    type Key = Eid;
    type Value = MatchOutcome;
    fn map(&self, record: &(Eid, ScenarioList), out: &mut Emitter<Eid, MatchOutcome>) {
        let outcome = filter_one(
            record.0,
            &record.1,
            self.video,
            &self.config,
            &BTreeSet::new(),
        );
        out.emit(record.0, outcome);
    }
}

struct OutcomeReducer;
impl Reducer<Eid, MatchOutcome> for OutcomeReducer {
    type Output = MatchOutcome;
    fn reduce(&self, _key: &Eid, values: &[MatchOutcome]) -> Vec<MatchOutcome> {
        values.first().cloned().into_iter().collect()
    }
}

/// Parallel VID filtering (paper §V-C): extraction job, then comparison
/// job, then driver-side exclusion fixup for conflicting matches.
///
/// # Errors
///
/// Propagates [`JobError`] from the engine.
pub fn parallel_vfilter(
    engine: &MapReduce,
    video: &VideoStore,
    lists: &BTreeMap<Eid, ScenarioList>,
    config: &VFilterConfig,
) -> Result<Vec<MatchOutcome>, JobError> {
    // Job A: extract every distinct selected scenario in parallel.
    let distinct: Vec<ScenarioId> = lists
        .values()
        .flat_map(|l| l.iter().copied())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let _ = engine.run(distinct, &ExtractionMapper { video }, &CountReducer)?;

    // Job B: per-EID comparisons (extractions now all hit the cache).
    let inputs: Vec<(Eid, ScenarioList)> = lists.iter().map(|(&e, l)| (e, l.clone())).collect();
    let mapper = ComparisonMapper {
        video,
        config: VFilterConfig {
            exclusion: false,
            ..*config
        },
    };
    let result = engine.run(inputs, &mapper, &OutcomeReducer)?;
    let mut outcomes = result.output;

    if config.exclusion {
        resolve_conflicts(&mut outcomes, lists, video, config);
    }
    outcomes.sort_by_key(|o| o.eid);
    Ok(outcomes)
}

/// Driver-side exclusion: when several EIDs claim the same VID, the
/// strongest claim wins and the losers re-filter with the claimed VIDs
/// ruled out (sequentially — this tail is small).
pub(crate) fn resolve_conflicts(
    outcomes: &mut [MatchOutcome],
    lists: &BTreeMap<Eid, ScenarioList>,
    video: &VideoStore,
    config: &VFilterConfig,
) {
    for _ in 0..8 {
        let mut claims: BTreeMap<Vid, Vec<usize>> = BTreeMap::new();
        for (i, o) in outcomes.iter().enumerate() {
            if let Some(vid) = o.vid {
                if o.is_majority() {
                    claims.entry(vid).or_default().push(i);
                }
            }
        }
        let mut losers: Vec<usize> = Vec::new();
        for claimants in claims.values() {
            if claimants.len() < 2 {
                continue;
            }
            let winner = *claimants
                .iter()
                .max_by(|&&a, &&b| {
                    let oa = &outcomes[a];
                    let ob = &outcomes[b];
                    // total_cmp: a NaN score must not silently tie and
                    // hand the win to iteration order.
                    oa.vote_share
                        .total_cmp(&ob.vote_share)
                        .then(oa.confidence.total_cmp(&ob.confidence))
                        .then(ob.eid.cmp(&oa.eid))
                })
                .expect("claimants non-empty");
            losers.extend(claimants.iter().filter(|&&i| i != winner));
        }
        if losers.is_empty() {
            return;
        }
        let excluded: BTreeSet<Vid> = claims.keys().copied().collect();
        for i in losers {
            let eid = outcomes[i].eid;
            let list = lists.get(&eid).cloned().unwrap_or_default();
            outcomes[i] = filter_one(eid, &list, video, config, &excluded);
        }
    }
}

/// Full parallel pipeline: Algorithm 3 splitting, then parallel VID
/// filtering, assembled into a [`MatchReport`].
///
/// # Errors
///
/// Propagates [`JobError`] from the engine.
pub fn parallel_match_on<B: StoreBackend>(
    engine: &MapReduce,
    backend: &B,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    vfilter_config: &VFilterConfig,
) -> Result<MatchReport, JobError> {
    parallel_match(
        engine,
        backend.estore(),
        backend.video(),
        targets,
        split_config,
        vfilter_config,
    )
}

/// See [`parallel_match_on`]; this is the concrete-store form.
///
/// # Errors
///
/// Propagates [`JobError`] from the engine.
pub fn parallel_match(
    engine: &MapReduce,
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    vfilter_config: &VFilterConfig,
) -> Result<MatchReport, JobError> {
    let tel = engine.telemetry().clone();
    let tel = &tel;
    // Root the causal tree at the pipeline span and re-parent the
    // engine under it, so every MapReduce job this query submits traces
    // back to it (the engine itself is cheap to clone — config + handles).
    let pipeline_ctx = ev_telemetry::TraceCtx::root();
    let mut pipeline_span = tel.span_ctx("parallel_match", "pipeline", pipeline_ctx);
    let engine = &engine.clone().with_parent_ctx(pipeline_ctx);
    let mut metrics = JobMetrics::default();
    let index_before = store.index().stats();
    let cache_hits_before = video.stats().cache_hits;
    let extracted_before = video.stats().extracted_scenarios;

    let e_start = Instant::now();
    let split = {
        let mut e_span = tel.span_ctx("parallel_split", "stage", pipeline_ctx.child());
        let out = parallel_split_impl(engine, store, targets, split_config, false, &mut metrics)?;
        e_span.arg(
            "examined",
            serde::Value::Int(out.scenarios_examined as i128),
        );
        e_span.arg("recorded", serde::Value::Int(out.recorded.len() as i128));
        out
    };
    let e_stage = e_start.elapsed();

    let v_start = Instant::now();
    let outcomes = {
        let mut v_span = tel.span_ctx("parallel_vfilter", "stage", pipeline_ctx.child());
        let out = parallel_vfilter(engine, video, &split.lists, vfilter_config)?;
        v_span.arg("eids", serde::Value::Int(split.lists.len() as i128));
        out
    };
    let v_stage = v_start.elapsed();

    let index_delta = store.index().stats().since(&index_before);
    let cache_hits = video.stats().cache_hits - cache_hits_before;
    let extracted = video.stats().extracted_scenarios - extracted_before;
    let index = IndexCounters {
        postings_probed: index_delta.postings_probed,
        // The parallel V stage shares extractions through the video
        // store's own cache rather than a driver-side gallery.
        cache_hits,
        scans_avoided: index_delta.scans_avoided,
    };
    metrics.record_index_counters(&index);

    let examined = split.scenarios_examined;
    let recorded_len = split.recorded.len();
    let report = MatchReport {
        outcomes,
        selected_scenarios: split.selected(),
        lists: split.lists,
        timings: StageTimings {
            e_stage,
            v_stage,
            index,
        },
        rounds: 1,
    };
    if tel.counters_on() {
        let registry = tel.registry();
        registry
            .counter(ev_telemetry::names::SETSPLIT_SCENARIOS_EXAMINED)
            .add(examined as u64);
        registry
            .counter(ev_telemetry::names::SETSPLIT_RECORDED)
            .add(recorded_len as u64);
        registry
            .counter(ev_telemetry::names::VFILTER_GALLERY_HITS)
            .add(cache_hits);
        registry
            .counter(ev_telemetry::names::VFILTER_GALLERY_MISSES)
            .add(extracted as u64);
        let total = cache_hits + extracted as u64;
        if total > 0 {
            registry
                .gauge(ev_telemetry::names::VFILTER_GALLERY_HIT_RATIO)
                .set(cache_hits as f64 / total as f64);
        }
        report.timings.record_to(registry);
        // fully_split stays false here even when the partition is fully
        // split: Algorithm 3 records whole timestamp snapshots, so the
        // Theorem 4.2/4.4 bounds on the recorded count do not apply.
        crate::refine::record_paper_gauges(
            registry,
            targets.len(),
            recorded_len,
            false,
            extracted as u64,
            &report,
        );
    }
    pipeline_span.arg("outcomes", serde::Value::Int(report.outcomes.len() as i128));
    drop(pipeline_span);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setsplit::{split_ideal, SetSplitConfig};
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_mapreduce::ClusterConfig;
    use ev_vision::cost::CostModel;

    fn world() -> (EScenarioStore, VideoStore) {
        // 8 persons; at time t, cell c holds persons {p : p mod 2^... }
        // binary-ish layout that fully distinguishes everyone.
        let layout: Vec<(u64, usize, Vec<u64>)> = vec![
            (0, 0, vec![0, 1, 2, 3]),
            (0, 1, vec![4, 5, 6, 7]),
            (1, 0, vec![0, 1, 4, 5]),
            (1, 1, vec![2, 3, 6, 7]),
            (2, 0, vec![0, 2, 4, 6]),
            (2, 1, vec![1, 3, 5, 7]),
        ];
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for (t, c, people) in &layout {
            let mut e = EScenario::new(CellId::new(*c), Timestamp::new(*t));
            let mut v = VScenario::new(CellId::new(*c), Timestamp::new(*t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 8];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn targets(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    fn engine() -> MapReduce {
        MapReduce::new(ClusterConfig {
            workers: 4,
            split_size: 2,
            reduce_partitions: 3,
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn parallel_split_distinguishes_everyone() {
        let (store, _) = world();
        let out = parallel_split(
            &engine(),
            &store,
            &targets(0..8),
            &ParallelSplitConfig::default(),
        )
        .unwrap();
        assert!(out.fully_split(), "partition: {:?}", out.partition);
        // 3 timestamps x 2 scenarios, only ~half are effective (each
        // timestamp's two cells carry complementary information — one of
        // the two suffices at the first timestamp).
        assert!(out.recorded.len() <= 7, "Theorem 4.2: at most n-1");
        for eid in 0..8 {
            assert!(
                !out.lists[&Eid::from_u64(eid)].is_empty(),
                "every EID needs footage"
            );
        }
    }

    #[test]
    fn parallel_split_matches_sequential_partition_granularity() {
        let (store, _) = world();
        let parallel = parallel_split(
            &engine(),
            &store,
            &targets(0..8),
            &ParallelSplitConfig {
                seed: 3,
                max_iterations: None,
            },
        )
        .unwrap();
        let sequential = split_ideal(&store, &targets(0..8), &SetSplitConfig::default());
        assert_eq!(
            parallel.partition.block_count(),
            sequential.partition.block_count()
        );
    }

    #[test]
    fn parallel_split_respects_iteration_cap() {
        let (store, _) = world();
        let out = parallel_split(
            &engine(),
            &store,
            &targets(0..8),
            &ParallelSplitConfig {
                seed: 0,
                max_iterations: Some(1),
            },
        )
        .unwrap();
        assert!(!out.fully_split(), "one timestamp cannot split 8 EIDs");
    }

    #[test]
    fn parallel_split_empty_targets() {
        let (store, _) = world();
        let out = parallel_split(
            &engine(),
            &store,
            &BTreeSet::new(),
            &ParallelSplitConfig::default(),
        )
        .unwrap();
        assert!(out.recorded.is_empty());
        assert!(out.lists.is_empty());
    }

    #[test]
    fn parallel_vfilter_matches_everyone() {
        let (store, video) = world();
        let split = parallel_split(
            &engine(),
            &store,
            &targets(0..8),
            &ParallelSplitConfig::default(),
        )
        .unwrap();
        let outcomes =
            parallel_vfilter(&engine(), &video, &split.lists, &VFilterConfig::default()).unwrap();
        assert_eq!(outcomes.len(), 8);
        for o in &outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn extraction_job_populates_the_cache() {
        let (store, video) = world();
        let split = parallel_split(
            &engine(),
            &store,
            &targets(0..8),
            &ParallelSplitConfig::default(),
        )
        .unwrap();
        let before = video.stats().extracted_scenarios;
        assert_eq!(before, 0);
        let _ =
            parallel_vfilter(&engine(), &video, &split.lists, &VFilterConfig::default()).unwrap();
        let stats = video.stats();
        let distinct: BTreeSet<ScenarioId> = split
            .lists
            .values()
            .flat_map(|l| l.iter().copied())
            .collect();
        assert_eq!(stats.extracted_scenarios, distinct.len());
        assert!(stats.cache_hits > 0, "comparison job reuses extractions");
    }

    #[test]
    fn parallel_match_end_to_end() {
        let (store, video) = world();
        let report = parallel_match(
            &engine(),
            &store,
            &video,
            &targets(0..8),
            &ParallelSplitConfig::default(),
            &VFilterConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.majority_rate() > 0.9);
        assert!(!report.selected_scenarios.is_empty());
    }

    #[test]
    fn parallel_match_is_kernel_mode_invariant() {
        // The mapreduce pipeline forwards `VFilterConfig` into every
        // mapper (including the exclusion-aware conflict fixup), so the
        // kernel choice must never change its report.
        let run = |kernel: ev_core::kernel::KernelMode| {
            let (store, video) = world();
            parallel_match(
                &engine(),
                &store,
                &video,
                &targets(0..8),
                &ParallelSplitConfig::default(),
                &VFilterConfig {
                    kernel,
                    ..VFilterConfig::default()
                },
            )
            .unwrap()
        };
        let reference = run(ev_core::kernel::KernelMode::Scalar);
        for kernel in [
            ev_core::kernel::KernelMode::Block,
            ev_core::kernel::KernelMode::Quantized,
        ] {
            let report = run(kernel);
            assert_eq!(report.outcomes, reference.outcomes, "kernel={kernel}");
            assert_eq!(report.lists, reference.lists, "kernel={kernel}");
        }
    }

    #[test]
    fn conflict_resolution_keeps_one_claimant_per_vid() {
        let (store, video) = world();
        let split = parallel_split(
            &engine(),
            &store,
            &targets(0..8),
            &ParallelSplitConfig::default(),
        )
        .unwrap();
        let outcomes =
            parallel_vfilter(&engine(), &video, &split.lists, &VFilterConfig::default()).unwrap();
        let mut seen: BTreeSet<Vid> = BTreeSet::new();
        for o in outcomes.iter().filter(|o| o.is_majority()) {
            let vid = o.vid.unwrap();
            assert!(seen.insert(vid), "VID {vid} claimed twice");
        }
    }
}
