//! Sharded multi-core matching on the `ev-exec` work-stealing pool.
//!
//! [`parallel_match`](crate::parallel::parallel_match) runs Algorithm 3
//! through the MapReduce engine; this module is the *thread-level*
//! parallelization the paper's cluster experiment implies (§V): real
//! worker threads share one machine's cores instead of simulated
//! cluster nodes.
//!
//! The pipeline has three parallel phases:
//!
//! 1. **E stage** — Algorithm 3 set splitting on a MapReduce engine
//!    backed by the same work-stealing pool. The job geometry
//!    (`split_size`, `reduce_partitions`) is pinned so the stage output
//!    is a pure function of `(store, targets, seed)` — independent of
//!    the thread count.
//! 2. **Shard extraction** — the store's cells are dealt round-robin
//!    into one [`CellShard`](ev_store::CellShard) per worker. Each
//!    worker builds a *private* inverted index over its shard, walks
//!    the posting lists of the requested EIDs to find the selected
//!    scenarios living in its cells, and batch-extracts them into the
//!    (thread-safe) video store cache. Shard unions are exactly the
//!    selected set, so the cache ends up identical for every thread
//!    count.
//! 3. **Scoring** — one task per EID scores its recorded list with
//!    [`filter_one`] (exclusion off), merged back in input order;
//!    exclusion conflicts are then resolved by the same driver-side
//!    fixup the MapReduce path uses.
//!
//! Every phase is deterministic in content and order for a fixed input,
//! which is what makes `sharded_match(threads = k)` reproduce the
//! `k = 1` [`MatchReport`] byte-identically (timings aside) — asserted
//! by the cross-thread equivalence tests.

use crate::parallel::{parallel_split_impl, resolve_conflicts, ParallelSplitConfig};
use crate::types::{IndexCounters, MatchOutcome, MatchReport, ScenarioList, StageTimings};
use crate::vfilter::{filter_one, VFilterConfig};
use ev_core::ids::Eid;
use ev_core::scenario::ScenarioId;
use ev_exec::Executor;
use ev_mapreduce::{
    record_exec_stats, Backend, ClusterConfig, JobError, JobMetrics, MapReduce,
    TelemetryExecObserver,
};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_telemetry::{Telemetry, TraceCtx};
use std::collections::BTreeSet;
use std::time::Instant;

/// Sharded matching over any [`StoreBackend`].
///
/// # Errors
///
/// Propagates [`JobError`] from the E-stage engine;
/// [`JobError::WorkerPanicked`] if a V-stage worker task panics.
pub fn sharded_match_on<B: StoreBackend>(
    threads: usize,
    backend: &B,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    vfilter_config: &VFilterConfig,
    telemetry: &Telemetry,
) -> Result<MatchReport, JobError> {
    sharded_match(
        threads,
        backend.estore(),
        backend.video(),
        targets,
        split_config,
        vfilter_config,
        telemetry,
    )
}

/// Full sharded pipeline: Algorithm 3 splitting on a work-stealing
/// MapReduce engine, then cell-sharded extraction and per-EID scoring
/// across `threads` real threads. See the module docs for the phase
/// breakdown and the determinism argument.
///
/// # Errors
///
/// Propagates [`JobError`] from the E-stage engine;
/// [`JobError::WorkerPanicked`] if a V-stage worker task panics.
pub fn sharded_match(
    threads: usize,
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    vfilter_config: &VFilterConfig,
    telemetry: &Telemetry,
) -> Result<MatchReport, JobError> {
    let threads = threads.max(1);
    // Root of this run's causal tree: the engine's job spans and both
    // exec phases parent under it, so an exported trace (or a flight
    // dump) reconstructs query → job → stage → task → attempt.
    let pipeline_ctx = TraceCtx::root();
    let mut pipeline_span = telemetry.span_ctx("sharded_match", "pipeline", pipeline_ctx);
    pipeline_span.arg("threads", serde::Value::Int(threads as i128));
    let mut metrics = JobMetrics::default();
    let index_before = store.index().stats();
    let cache_hits_before = video.stats().cache_hits;
    let extracted_before = video.stats().extracted_scenarios;

    // ---- E stage: Algorithm 3 on the work-stealing engine ----
    // The job geometry is pinned (not taken from a caller-supplied
    // ClusterConfig): the engine's shuffle already makes job output
    // independent of worker count, so with fixed split_size and
    // reduce_partitions the whole stage depends only on
    // (store, targets, seed).
    let engine = MapReduce::new(ClusterConfig {
        workers: threads,
        split_size: 8,
        reduce_partitions: 4,
        backend: Backend::WorkStealing,
        ..ClusterConfig::default()
    })
    .with_telemetry(telemetry)
    .with_parent_ctx(pipeline_ctx);
    let e_start = Instant::now();
    let split = {
        let mut e_span = telemetry.span_ctx("parallel_split", "stage", pipeline_ctx.child());
        let out = parallel_split_impl(&engine, store, targets, split_config, false, &mut metrics)?;
        e_span.arg(
            "examined",
            serde::Value::Int(out.scenarios_examined as i128),
        );
        e_span.arg("recorded", serde::Value::Int(out.recorded.len() as i128));
        out
    };
    let e_stage = e_start.elapsed();

    let exec = Executor::new(threads);
    let v_start = Instant::now();
    let selected: BTreeSet<ScenarioId> = split
        .lists
        .values()
        .flat_map(|l| l.iter().copied())
        .collect();

    // ---- shard extraction: one private index + gallery batch per shard ----
    let mut local_postings_probed = 0u64;
    {
        let extract_ctx = pipeline_ctx.child();
        let mut extract_span = telemetry.span_ctx("shard_extract", "stage", extract_ctx);
        let observer = TelemetryExecObserver::new(telemetry, "shard_extract", extract_ctx);
        let shards = store.shard_cells(threads);
        let (per_shard, stats) = exec.map_ordered_observed(
            shards,
            |_ctx, shard| {
                let index = shard.build_index();
                let mut batch: BTreeSet<ScenarioId> = BTreeSet::new();
                for &eid in targets {
                    for &id in index.postings(eid) {
                        if selected.contains(&id) {
                            batch.insert(id);
                        }
                    }
                }
                let extracted = batch
                    .iter()
                    .filter(|&&id| video.extract(id).is_some())
                    .count() as u64;
                (extracted, index.stats().postings_probed)
            },
            &observer,
        );
        metrics.record_exec_session(&stats);
        if telemetry.counters_on() {
            record_exec_stats(telemetry.registry(), &stats);
        }
        let mut batched = 0u64;
        for result in per_shard {
            let (extracted, probed) = result.map_err(|panic| JobError::WorkerPanicked {
                stage: "shard_extract",
                message: panic.message,
            })?;
            batched += extracted;
            local_postings_probed += probed;
        }
        extract_span.arg("extracted", serde::Value::Int(i128::from(batched)));
    }

    // ---- scoring: one task per EID, merged in input (= EID) order ----
    let outcomes = {
        let score_ctx = pipeline_ctx.child();
        let mut score_span = telemetry.span_ctx("sharded_vfilter", "stage", score_ctx);
        let observer = TelemetryExecObserver::new(telemetry, "sharded_vfilter", score_ctx);
        let inputs: Vec<(Eid, ScenarioList)> =
            split.lists.iter().map(|(&e, l)| (e, l.clone())).collect();
        score_span.arg("eids", serde::Value::Int(inputs.len() as i128));
        let score_config = VFilterConfig {
            exclusion: false,
            ..*vfilter_config
        };
        let (scored, stats) = exec.map_ordered_observed(
            inputs,
            |_ctx, (eid, list): (Eid, ScenarioList)| {
                filter_one(eid, &list, video, &score_config, &BTreeSet::new())
            },
            &observer,
        );
        metrics.record_exec_session(&stats);
        if telemetry.counters_on() {
            record_exec_stats(telemetry.registry(), &stats);
        }
        let mut outcomes: Vec<MatchOutcome> = Vec::with_capacity(scored.len());
        for result in scored {
            outcomes.push(result.map_err(|panic| JobError::WorkerPanicked {
                stage: "sharded_vfilter",
                message: panic.message,
            })?);
        }
        if vfilter_config.exclusion {
            resolve_conflicts(&mut outcomes, &split.lists, video, vfilter_config);
        }
        outcomes.sort_by_key(|o| o.eid);
        outcomes
    };
    let v_stage = v_start.elapsed();

    // ---- assemble, exactly like the MapReduce path ----
    let index_delta = store.index().stats().since(&index_before);
    let cache_hits = video.stats().cache_hits - cache_hits_before;
    let extracted = video.stats().extracted_scenarios - extracted_before;
    let index = IndexCounters {
        // Shard-private index probes are real index work; fold them in
        // next to the shared store index's own counters.
        postings_probed: index_delta.postings_probed + local_postings_probed,
        cache_hits,
        scans_avoided: index_delta.scans_avoided,
    };
    metrics.record_index_counters(&index);

    let examined = split.scenarios_examined;
    let recorded_len = split.recorded.len();
    let report = MatchReport {
        outcomes,
        selected_scenarios: split.selected(),
        lists: split.lists,
        timings: StageTimings {
            e_stage,
            v_stage,
            index,
        },
        rounds: 1,
    };
    if telemetry.counters_on() {
        let registry = telemetry.registry();
        registry
            .counter(ev_telemetry::names::SETSPLIT_SCENARIOS_EXAMINED)
            .add(examined as u64);
        registry
            .counter(ev_telemetry::names::SETSPLIT_RECORDED)
            .add(recorded_len as u64);
        registry
            .counter(ev_telemetry::names::VFILTER_GALLERY_HITS)
            .add(cache_hits);
        registry
            .counter(ev_telemetry::names::VFILTER_GALLERY_MISSES)
            .add(extracted as u64);
        let total = cache_hits + extracted as u64;
        if total > 0 {
            registry
                .gauge(ev_telemetry::names::VFILTER_GALLERY_HIT_RATIO)
                .set(cache_hits as f64 / total as f64);
        }
        report.timings.record_to(registry);
        // As in `parallel_match`: Algorithm 3 records whole timestamp
        // snapshots, so the Theorem 4.2/4.4 recorded-count bounds do
        // not apply and fully_split stays false.
        crate::refine::record_paper_gauges(
            registry,
            targets.len(),
            recorded_len,
            false,
            extracted as u64,
            &report,
        );
    }
    pipeline_span.arg("outcomes", serde::Value::Int(report.outcomes.len() as i128));
    drop(pipeline_span);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_match;
    use ev_core::feature::FeatureVector;
    use ev_core::ids::Vid;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    fn world() -> (EScenarioStore, VideoStore) {
        let layout: Vec<(u64, usize, Vec<u64>)> = vec![
            (0, 0, vec![0, 1, 2, 3]),
            (0, 1, vec![4, 5, 6, 7]),
            (1, 0, vec![0, 1, 4, 5]),
            (1, 1, vec![2, 3, 6, 7]),
            (2, 0, vec![0, 2, 4, 6]),
            (2, 1, vec![1, 3, 5, 7]),
        ];
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for (t, c, people) in &layout {
            let mut e = EScenario::new(CellId::new(*c), Timestamp::new(*t));
            let mut v = VScenario::new(CellId::new(*c), Timestamp::new(*t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 8];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn targets() -> BTreeSet<Eid> {
        (0..8).map(Eid::from_u64).collect()
    }

    #[test]
    fn sharded_match_labels_everyone() {
        let (store, video) = world();
        let report = sharded_match(
            2,
            &store,
            &video,
            &targets(),
            &ParallelSplitConfig::default(),
            &VFilterConfig::default(),
            Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), 8);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let (store, video) = world();
        let run = |threads: usize| {
            // Fresh video store per run so extraction caching cannot
            // leak across thread counts.
            let (_, video_fresh) = world();
            let _ = &video;
            sharded_match(
                threads,
                &store,
                &video_fresh,
                &targets(),
                &ParallelSplitConfig {
                    seed: 7,
                    max_iterations: None,
                },
                &VFilterConfig::default(),
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            let report = run(threads);
            assert_eq!(report.outcomes, reference.outcomes, "threads={threads}");
            assert_eq!(report.lists, reference.lists, "threads={threads}");
            assert_eq!(
                report.selected_scenarios, reference.selected_scenarios,
                "threads={threads}"
            );
            assert_eq!(report.rounds, reference.rounds);
        }
    }

    #[test]
    fn kernel_mode_never_changes_the_report_at_any_thread_count() {
        // The acceptance bar of the similarity kernel: in exact mode
        // the MatchReport is byte-identical across `--kernel
        // scalar|block|quantized` at every tested thread count.
        let (store, _) = world();
        let run = |threads: usize, kernel: ev_core::kernel::KernelMode| {
            let (_, video_fresh) = world();
            sharded_match(
                threads,
                &store,
                &video_fresh,
                &targets(),
                &ParallelSplitConfig {
                    seed: 7,
                    max_iterations: None,
                },
                &VFilterConfig {
                    kernel,
                    ..VFilterConfig::default()
                },
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let reference = run(1, ev_core::kernel::KernelMode::Scalar);
        for kernel in [
            ev_core::kernel::KernelMode::Scalar,
            ev_core::kernel::KernelMode::Block,
            ev_core::kernel::KernelMode::Quantized,
        ] {
            for threads in [1, 2, 8] {
                let report = run(threads, kernel);
                assert_eq!(
                    report.outcomes, reference.outcomes,
                    "kernel={kernel} threads={threads}"
                );
                assert_eq!(report.lists, reference.lists, "kernel={kernel}");
                assert_eq!(report.selected_scenarios, reference.selected_scenarios);
            }
        }
    }

    #[test]
    fn sharded_matches_the_mapreduce_path() {
        // The sharded pipeline must agree with parallel_match run on an
        // engine with the same pinned job geometry: same split output,
        // same scoring, same conflict fixup.
        let (store, video) = world();
        let split_config = ParallelSplitConfig {
            seed: 3,
            max_iterations: None,
        };
        let sharded = sharded_match(
            4,
            &store,
            &video,
            &targets(),
            &split_config,
            &VFilterConfig::default(),
            Telemetry::disabled(),
        )
        .unwrap();
        let (store2, video2) = world();
        let engine = MapReduce::new(ClusterConfig {
            workers: 1,
            split_size: 8,
            reduce_partitions: 4,
            ..ClusterConfig::default()
        });
        let mapreduce = parallel_match(
            &engine,
            &store2,
            &video2,
            &targets(),
            &split_config,
            &VFilterConfig::default(),
        )
        .unwrap();
        assert_eq!(sharded.outcomes, mapreduce.outcomes);
        assert_eq!(sharded.lists, mapreduce.lists);
        assert_eq!(sharded.selected_scenarios, mapreduce.selected_scenarios);
    }

    #[test]
    fn anytime_report_is_thread_count_invariant() {
        // Approximate matching is a deterministic per-EID function of
        // (list, gallery, config); sharding must not perturb it.
        let (store, _) = world();
        let run = |threads: usize| {
            let (_, video_fresh) = world();
            sharded_match(
                threads,
                &store,
                &video_fresh,
                &targets(),
                &ParallelSplitConfig {
                    seed: 7,
                    max_iterations: None,
                },
                &VFilterConfig {
                    anytime: Some(crate::anytime::AnytimeConfig {
                        confidence: 0.6,
                        budget_scenarios: Some(2),
                    }),
                    ..VFilterConfig::default()
                },
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            let report = run(threads);
            assert_eq!(report.outcomes, reference.outcomes, "threads={threads}");
            assert_eq!(report.lists, reference.lists, "threads={threads}");
            assert_eq!(
                report.selected_scenarios, reference.selected_scenarios,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn full_confidence_anytime_is_byte_identical_to_exact() {
        // `confidence: 1.0` with no budget is not approximate at all:
        // at every thread count the report must equal the default
        // config's, byte for byte.
        let (store, _) = world();
        let run = |threads: usize, anytime: Option<crate::anytime::AnytimeConfig>| {
            let (_, video_fresh) = world();
            sharded_match(
                threads,
                &store,
                &video_fresh,
                &targets(),
                &ParallelSplitConfig {
                    seed: 7,
                    max_iterations: None,
                },
                &VFilterConfig {
                    anytime,
                    ..VFilterConfig::default()
                },
                Telemetry::disabled(),
            )
            .unwrap()
        };
        let exact = run(1, None);
        for threads in [1, 2, 8] {
            let report = run(threads, Some(crate::anytime::AnytimeConfig::default()));
            assert_eq!(report.outcomes, exact.outcomes, "threads={threads}");
            assert_eq!(report.lists, exact.lists, "threads={threads}");
            assert_eq!(
                report.selected_scenarios, exact.selected_scenarios,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn shard_extraction_warms_the_whole_gallery() {
        let (store, video) = world();
        let report = sharded_match(
            3,
            &store,
            &video,
            &targets(),
            &ParallelSplitConfig::default(),
            &VFilterConfig::default(),
            Telemetry::disabled(),
        )
        .unwrap();
        let distinct: BTreeSet<ScenarioId> = report
            .lists
            .values()
            .flat_map(|l| l.iter().copied())
            .collect();
        // Scoring may extract list entries the shard batch skipped
        // (padding scenarios that contain no requested EID), so the
        // extraction count can only be bounded below by the batch and
        // above by the distinct list union.
        let stats = video.stats();
        assert!(stats.extracted_scenarios <= distinct.len());
        assert!(
            stats.cache_hits > 0,
            "scoring must reuse the shard workers' extractions"
        );
    }
}
