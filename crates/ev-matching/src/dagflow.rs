//! The matching pipeline as one stage-DAG submission (ROADMAP item 3).
//!
//! [`parallel_match`](crate::parallel::parallel_match) submits two
//! MapReduce jobs *per splitting round*, each with a full barrier, and
//! only then starts VID filtering. This module declares the whole
//! computation — every round of Algorithm 3 set splitting *and* the
//! V stage — as a single [`DagSpec`] on the
//! [`ev_mapreduce::dag`] scheduler, so the expensive per-timestamp
//! snapshot scans all overlap instead of waiting for earlier rounds:
//!
//! ```text
//! init ──────────► sig(0)×4 ─► merge(0) ─► sig(1)×4 ─► merge(1) ─► … ─► assemble
//!  snap(0) ──────────┘▲           ▲            ▲                            │
//!  snap(1) ───────────┼───────────┼────────────┘                            │
//!  snap(…) (all run concurrently) ┘                          extract×4 ◄────┤
//!                                                                 │         │
//!                                               finalize ◄── score×4 ◄──────┘
//! ```
//!
//! * `snap(t)` — one stage per candidate timestamp: scan
//!   `store.at_time(t)` for inclusive-zone members of the target
//!   universe. No dependencies, so every round's scan runs as early as
//!   a worker is free. Scans for rounds the splitter never enters
//!   (because the partition is already fully split) are wasted work —
//!   the price of overlap; they cannot change the result.
//! * `sig(t)` — 4 pinned partitions computing each live EID's
//!   membership signature (the map+reduce of Algorithm 3's first job),
//!   reading `snap(t)` (narrow broadcast) and the previous round's
//!   state (narrow).
//! * `merge(t)` — a real shuffle over the signature partitions: group
//!   EIDs by signature (the second job), derive the refined blocks and
//!   the round's effective scenarios, and fold them into the carried
//!   round state. Replicates `parallel_split_impl`'s round logic
//!   branch for branch, so the final state is byte-identical.
//! * `assemble` — anchors, list padding and uniqueness fixups, exactly
//!   the sequential post-processing.
//! * `extract×4` / `score×4` / `finalize` — the V stage as in the
//!   sharded pipeline: warm the gallery cache, score per-EID slices
//!   with exclusion off, then one driver-equivalent conflict fixup.
//!
//! The stage geometry (4 signature partitions, 4 V partitions) is
//! pinned like the sharded pipeline's job geometry, so the outputs are
//! a pure function of `(store, video, targets, seed)` — independent of
//! [`DagConfig::threads`], of panic retries, and of lineage recomputes.
//! The equivalence tests assert the resulting [`MatchReport`] matches
//! the MapReduce and sharded paths byte for byte (timings aside).

use crate::parallel::{resolve_conflicts, ParallelSplitConfig, SetId};
use crate::setsplit::{attach_anchors, SplitOutput};
use crate::types::{IndexCounters, MatchOutcome, MatchReport, ScenarioList, StageTimings};
use crate::vfilter::{filter_one, VFilterConfig};
use ev_core::ids::Eid;
use ev_core::partition::EidPartition;
use ev_core::scenario::{ScenarioId, ZoneAttr};
use ev_mapreduce::dag::{DagConfig, DagSpec, StageDep, StageId};
use ev_mapreduce::JobError;
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_telemetry::{Telemetry, TraceCtx};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Signature-stage partitions, pinned so the stage output is
/// independent of the thread count (same move as the sharded
/// pipeline's fixed job geometry).
const SIG_PARTITIONS: usize = 4;
/// Extract/score-stage partitions, pinned for the same reason.
const V_PARTITIONS: usize = 4;

/// Splitter state carried from round to round through the merge chain.
#[derive(Debug, Clone, Default)]
struct RoundState {
    blocks: Vec<BTreeSet<Eid>>,
    recorded: Vec<ScenarioId>,
    lists: BTreeMap<Eid, ScenarioList>,
    examined: usize,
    /// The sequential loop would have `break`ed before this round.
    finished: bool,
}

/// The partition payload flowing through the matching DAG.
#[derive(Debug, Clone)]
enum Flow {
    /// `snap(t)`: every scenario at the timestamp (id, inclusive-zone
    /// members ∩ target universe — possibly empty) plus the examined
    /// count the round would charge.
    Snap {
        scenarios: Vec<(ScenarioId, Vec<Eid>)>,
        examined: usize,
    },
    /// `sig(t)` partition: (EID, membership signature) pairs for this
    /// partition's slice of the live universe.
    Sigs(Vec<(Eid, Vec<SetId>)>),
    /// Splitter state after a round (or the initial state).
    Round(RoundState),
    /// `extract` partition: galleries forced into the cache (the
    /// payload is the side effect).
    Extracted,
    /// `score`/`finalize`: match outcomes.
    Outcomes(Vec<MatchOutcome>),
    /// `assemble`: the finished split.
    Split(SplitOutput),
}

impl Flow {
    fn as_snap(&self) -> (&[(ScenarioId, Vec<Eid>)], usize) {
        match self {
            Flow::Snap {
                scenarios,
                examined,
            } => (scenarios, *examined),
            other => unreachable!("expected Snap, got {other:?}"),
        }
    }
    fn as_sigs(&self) -> &[(Eid, Vec<SetId>)] {
        match self {
            Flow::Sigs(s) => s,
            other => unreachable!("expected Sigs, got {other:?}"),
        }
    }
    fn as_round(&self) -> &RoundState {
        match self {
            Flow::Round(r) => r,
            other => unreachable!("expected Round, got {other:?}"),
        }
    }
    fn as_outcomes(&self) -> &[MatchOutcome] {
        match self {
            Flow::Outcomes(o) => o,
            other => unreachable!("expected Outcomes, got {other:?}"),
        }
    }
    fn as_split(&self) -> &SplitOutput {
        match self {
            Flow::Split(s) => s,
            other => unreachable!("expected Split, got {other:?}"),
        }
    }
}

/// The live blocks of a round, their universe, and the restricted
/// scenario sets — `parallel_split_impl`'s preprocess, recomputed
/// identically wherever a stage needs it.
struct RoundView {
    live: Vec<BTreeSet<Eid>>,
    done: Vec<BTreeSet<Eid>>,
    live_universe: BTreeSet<Eid>,
    /// Scenario id → members ∩ live universe (non-empty only), in
    /// snapshot order.
    scenario_sets: Vec<(ScenarioId, Vec<Eid>)>,
}

impl RoundView {
    fn build(state: &RoundState, snapshot: &[(ScenarioId, Vec<Eid>)]) -> RoundView {
        let (live, done): (Vec<BTreeSet<Eid>>, Vec<BTreeSet<Eid>>) =
            state.blocks.iter().cloned().partition(|b| b.len() > 1);
        let live_universe: BTreeSet<Eid> = live.iter().flatten().copied().collect();
        let scenario_sets: Vec<(ScenarioId, Vec<Eid>)> = snapshot
            .iter()
            .filter_map(|(id, members)| {
                let members: Vec<Eid> = members
                    .iter()
                    .filter(|e| live_universe.contains(e))
                    .copied()
                    .collect();
                (!members.is_empty()).then_some((*id, members))
            })
            .collect();
        RoundView {
            live,
            done,
            live_universe,
            scenario_sets,
        }
    }

    /// Is this round a no-op? Mirrors the sequential loop: it breaks
    /// when every block is a singleton and skips the round when no
    /// scenario at the timestamp touches the live universe.
    fn inactive(&self, state: &RoundState) -> bool {
        state.finished || state.blocks.iter().all(|b| b.len() == 1) || self.live.is_empty()
    }
}

/// One EID's membership signature: the sorted ids of every set
/// (restricted scenario or live block) containing it — what the first
/// job's shuffle+reduce produces for the EID.
fn signature_of(eid: Eid, view: &RoundView) -> Vec<SetId> {
    let mut sig: Vec<SetId> = view
        .scenario_sets
        .iter()
        .filter(|(_, members)| members.contains(&eid))
        .map(|(id, _)| SetId::Scenario(*id))
        .collect();
    sig.extend(
        view.live
            .iter()
            .enumerate()
            .filter(|(_, block)| block.contains(&eid))
            .map(|(i, _)| SetId::Block(i)),
    );
    sig.sort_unstable();
    sig
}

/// Builds the full matching DAG over `times` (already shuffled and
/// truncated to the round budget) and returns the spec plus the ids of
/// the `assemble` and `finalize` stages.
#[allow(clippy::too_many_lines)]
fn build_match_spec<'a>(
    store: &'a EScenarioStore,
    video: &'a VideoStore,
    targets: &'a BTreeSet<Eid>,
    times: &[ev_core::time::Timestamp],
    vfilter: &'a VFilterConfig,
    split_seed: u64,
    with_vstage: bool,
) -> (DagSpec<'a, Flow>, StageId, Option<StageId>) {
    let mut dag: DagSpec<'a, Flow> = DagSpec::new();

    let init = dag.stage("dag_init", 1, Vec::new(), move |_ctx, _inputs| {
        Flow::Round(RoundState {
            blocks: if targets.is_empty() {
                Vec::new()
            } else {
                vec![targets.clone()]
            },
            lists: targets.iter().map(|&e| (e, Vec::new())).collect(),
            ..RoundState::default()
        })
    });

    let mut prev_round = init;
    for &t in times {
        let snap = dag.stage("dag_snapshot", 1, Vec::new(), move |_ctx, _inputs| {
            let scenarios: Vec<(ScenarioId, Vec<Eid>)> = store
                .at_time(t)
                .map(|scenario| {
                    let members: Vec<Eid> = scenario
                        .iter()
                        .filter(|(e, attr)| *attr == ZoneAttr::Inclusive && targets.contains(e))
                        .map(|(e, _)| e)
                        .collect();
                    (scenario.id(), members)
                })
                .collect();
            let examined = scenarios.len();
            Flow::Snap {
                scenarios,
                examined,
            }
        });
        let sig = dag.stage(
            "dag_signatures",
            SIG_PARTITIONS,
            vec![StageDep::narrow(snap), StageDep::narrow(prev_round)],
            move |ctx, inputs| {
                let (snapshot, _) = inputs[0].as_snap();
                let state = inputs[1].as_round();
                let view = RoundView::build(state, snapshot);
                if view.inactive(state) || view.scenario_sets.is_empty() {
                    return Flow::Sigs(Vec::new());
                }
                let sigs: Vec<(Eid, Vec<SetId>)> = view
                    .live_universe
                    .iter()
                    .enumerate()
                    .filter(|(rank, _)| rank % SIG_PARTITIONS == ctx.partition)
                    .map(|(_, &eid)| (eid, signature_of(eid, &view)))
                    .collect();
                Flow::Sigs(sigs)
            },
        );
        let merge = dag.stage(
            "dag_merge",
            1,
            vec![
                StageDep::shuffle(sig),
                StageDep::narrow(snap),
                StageDep::narrow(prev_round),
            ],
            move |_ctx, inputs| {
                let (snapshot, snap_examined) = inputs[SIG_PARTITIONS].as_snap();
                let state = inputs[SIG_PARTITIONS + 1].as_round();
                let mut next = state.clone();
                if state.finished || state.blocks.iter().all(|b| b.len() == 1) {
                    // The sequential loop breaks before this round.
                    next.finished = true;
                    return Flow::Round(next);
                }
                let view = RoundView::build(state, snapshot);
                if view.live.is_empty() {
                    next.blocks = view.done;
                    next.finished = true;
                    return Flow::Round(next);
                }
                // Every scenario at the timestamp counts as examined
                // the moment the round is entered.
                next.examined += snap_examined;
                if view.scenario_sets.is_empty() {
                    // Nothing at this timestamp touches the live
                    // universe: the round is a no-op, but the loop
                    // reorders blocks as live ++ done.
                    next.blocks = view.live.into_iter().chain(view.done).collect();
                    return Flow::Round(next);
                }
                // The shuffle: group EIDs by signature, sorted by
                // signature — exactly the engine's key-ordered output.
                let mut groups: BTreeMap<Vec<SetId>, Vec<Eid>> = BTreeMap::new();
                for part in &inputs[..SIG_PARTITIONS] {
                    for (eid, sig) in part.as_sigs() {
                        groups.entry(sig.clone()).or_default().push(*eid);
                    }
                }
                for eids in groups.values_mut() {
                    eids.sort_unstable();
                    eids.dedup();
                }
                let scenario_members: BTreeMap<ScenarioId, &Vec<Eid>> = view
                    .scenario_sets
                    .iter()
                    .map(|(id, members)| (*id, members))
                    .collect();
                let mut children_of: BTreeMap<usize, Vec<&Vec<SetId>>> = BTreeMap::new();
                let mut new_blocks: Vec<BTreeSet<Eid>> = view.done;
                for (signature, eids) in &groups {
                    let block_id = signature.iter().find_map(|s| match s {
                        SetId::Block(i) => Some(*i),
                        SetId::Scenario(_) => None,
                    });
                    if let Some(b) = block_id {
                        children_of.entry(b).or_default().push(signature);
                    }
                    new_blocks.push(eids.iter().copied().collect());
                }
                let mut effective: BTreeSet<ScenarioId> = BTreeSet::new();
                for children in children_of.values() {
                    if children.len() < 2 {
                        continue; // the block did not split
                    }
                    let union: BTreeSet<ScenarioId> = children
                        .iter()
                        .flat_map(|sig| sig.iter())
                        .filter_map(|s| match s {
                            SetId::Scenario(id) => Some(*id),
                            SetId::Block(_) => None,
                        })
                        .collect();
                    for id in union {
                        let holders = children
                            .iter()
                            .filter(|sig| sig.contains(&SetId::Scenario(id)))
                            .count();
                        if holders > 0 && holders < children.len() {
                            effective.insert(id);
                        }
                    }
                }
                for id in effective {
                    next.recorded.push(id);
                    if let Some(members) = scenario_members.get(&id) {
                        for &eid in *members {
                            if let Some(list) = next.lists.get_mut(&eid) {
                                list.push(id);
                            }
                        }
                    }
                }
                next.blocks = new_blocks;
                Flow::Round(next)
            },
        );
        prev_round = merge;
    }

    let assemble = dag.stage(
        "dag_assemble",
        1,
        vec![StageDep::narrow(prev_round)],
        move |_ctx, inputs| {
            let state = inputs[0].as_round();
            let mut lists = state.lists.clone();
            attach_anchors(store, &mut lists, false);
            crate::setsplit::extend_lists(store, &mut lists, 3, split_seed, true, false);
            crate::setsplit::ensure_unique_against_universe(
                store, &mut lists, split_seed, true, false,
            );
            let partition = EidPartition::from_blocks(state.blocks.clone())
                .expect("merge output blocks are disjoint by construction");
            Flow::Split(SplitOutput {
                recorded: state.recorded.clone(),
                lists,
                partition,
                scenarios_examined: state.examined,
            })
        },
    );
    dag.keep(assemble);
    if !with_vstage {
        return (dag, assemble, None);
    }

    let extract = dag.stage(
        "dag_extract",
        V_PARTITIONS,
        vec![StageDep::narrow(assemble)],
        move |ctx, inputs| {
            let split = inputs[0].as_split();
            let distinct: BTreeSet<ScenarioId> = split
                .lists
                .values()
                .flat_map(|l| l.iter().copied())
                .collect();
            for (_, &id) in distinct
                .iter()
                .enumerate()
                .filter(|(rank, _)| rank % V_PARTITIONS == ctx.partition)
            {
                let _ = video.extract(id);
            }
            Flow::Extracted
        },
    );
    let score = dag.stage(
        "dag_score",
        V_PARTITIONS,
        // The shuffle edge on extract is the cache-warm-up barrier the
        // MapReduce path gets from running its extraction job first.
        vec![StageDep::narrow(assemble), StageDep::shuffle(extract)],
        move |ctx, inputs| {
            let split = inputs[0].as_split();
            let score_config = VFilterConfig {
                exclusion: false,
                ..*vfilter
            };
            let outcomes: Vec<MatchOutcome> = split
                .lists
                .iter()
                .enumerate()
                .filter(|(rank, _)| rank % V_PARTITIONS == ctx.partition)
                .map(|(_, (&eid, list))| {
                    filter_one(eid, list, video, &score_config, &BTreeSet::new())
                })
                .collect();
            Flow::Outcomes(outcomes)
        },
    );
    let finalize = dag.stage(
        "dag_finalize",
        1,
        vec![StageDep::shuffle(score), StageDep::narrow(assemble)],
        move |_ctx, inputs| {
            let split = inputs[V_PARTITIONS].as_split();
            let mut outcomes: Vec<MatchOutcome> = inputs[..V_PARTITIONS]
                .iter()
                .flat_map(|p| p.as_outcomes().iter().cloned())
                .collect();
            // The MapReduce comparison job hands the fixup outcomes in
            // key (= EID) order; reproduce that before resolving.
            outcomes.sort_by_key(|o| o.eid);
            if vfilter.exclusion {
                resolve_conflicts(&mut outcomes, &split.lists, video, vfilter);
            }
            outcomes.sort_by_key(|o| o.eid);
            Flow::Outcomes(outcomes)
        },
    );
    dag.keep(finalize);
    (dag, assemble, Some(finalize))
}

/// The shuffled, budget-truncated timestamp order — identical to
/// `parallel_split_impl`'s draw.
fn round_times(
    store: &EScenarioStore,
    config: &ParallelSplitConfig,
) -> Vec<ev_core::time::Timestamp> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut times: Vec<_> = store.times().collect();
    times.shuffle(&mut rng);
    times.truncate(config.max_iterations.unwrap_or(usize::MAX).min(times.len()));
    times
}

/// Algorithm 3 set splitting as one DAG submission: all snapshot scans
/// overlap, rounds pipeline through the merge chain. Byte-identical to
/// [`parallel_split`](crate::parallel::parallel_split) at every thread
/// count.
///
/// # Errors
///
/// Propagates [`JobError`] from the scheduler
/// ([`JobError::WorkerPanicked`] once a partition exhausts
/// [`DagConfig::max_attempts`]).
pub fn dag_split(
    config: &DagConfig,
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    telemetry: &Telemetry,
) -> Result<SplitOutput, JobError> {
    let times = round_times(store, split_config);
    let video = VideoStore::new(Vec::new(), ev_vision::cost::CostModel::free());
    let vfilter = VFilterConfig::default();
    let (dag, assemble, _) = build_match_spec(
        store,
        &video,
        targets,
        &times,
        &vfilter,
        split_config.seed,
        false,
    );
    let run = dag.run(config, telemetry, TraceCtx::root())?;
    Ok(extract_split(&run.outputs[&assemble][0]))
}

fn extract_split(flow: &Arc<Flow>) -> SplitOutput {
    flow.as_split().clone()
}

/// Full matching pipeline over any [`StoreBackend`] as a single DAG
/// submission. See [`dag_match`].
///
/// # Errors
///
/// Propagates [`JobError`] from the scheduler.
pub fn dag_match_on<B: StoreBackend>(
    config: &DagConfig,
    backend: &B,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    vfilter_config: &VFilterConfig,
    telemetry: &Telemetry,
) -> Result<MatchReport, JobError> {
    dag_match(
        config,
        backend.estore(),
        backend.video(),
        targets,
        split_config,
        vfilter_config,
        telemetry,
    )
}

/// Full matching pipeline — every splitting round plus extraction,
/// scoring and conflict resolution — submitted as **one** stage DAG.
/// Universal matching ([`EvMatcher::match_universal`]
/// with [`ExecutionMode::Dag`]) runs through here: the whole job is a
/// single graph, so a lost worker costs only the partitions it was
/// computing.
///
/// The report is byte-identical (timings aside) to
/// [`parallel_match`](crate::parallel::parallel_match) and
/// [`sharded_match`](crate::sharded::sharded_match) at every thread
/// count.
///
/// [`EvMatcher::match_universal`]: crate::matcher::EvMatcher::match_universal
/// [`ExecutionMode::Dag`]: crate::matcher::ExecutionMode::Dag
///
/// # Errors
///
/// Propagates [`JobError`] from the scheduler.
pub fn dag_match(
    config: &DagConfig,
    store: &EScenarioStore,
    video: &VideoStore,
    targets: &BTreeSet<Eid>,
    split_config: &ParallelSplitConfig,
    vfilter_config: &VFilterConfig,
    telemetry: &Telemetry,
) -> Result<MatchReport, JobError> {
    let pipeline_ctx = TraceCtx::root();
    let mut pipeline_span = telemetry.span_ctx("dag_match", "pipeline", pipeline_ctx);
    pipeline_span.arg("threads", serde::Value::Int(config.threads as i128));
    let index_before = store.index().stats();
    let cache_hits_before = video.stats().cache_hits;
    let extracted_before = video.stats().extracted_scenarios;

    let times = round_times(store, split_config);
    let start = Instant::now();
    let (dag, assemble, finalize) = build_match_spec(
        store,
        video,
        targets,
        &times,
        vfilter_config,
        split_config.seed,
        true,
    );
    let run = dag.run(config, telemetry, pipeline_ctx)?;
    let elapsed = start.elapsed();
    let split = extract_split(&run.outputs[&assemble][0]);
    let finalize = finalize.expect("V stage requested");
    let outcomes = run.outputs[&finalize][0].as_outcomes().to_vec();

    let index_delta = store.index().stats().since(&index_before);
    let cache_hits = video.stats().cache_hits - cache_hits_before;
    let extracted = video.stats().extracted_scenarios - extracted_before;
    let index = IndexCounters {
        postings_probed: index_delta.postings_probed,
        cache_hits,
        scans_avoided: index_delta.scans_avoided,
    };

    let examined = split.scenarios_examined;
    let recorded_len = split.recorded.len();
    let report = MatchReport {
        outcomes,
        selected_scenarios: split.selected(),
        lists: split.lists,
        timings: StageTimings {
            // E and V work overlap inside the single submission, so the
            // whole wall time is charged to the E slot; a per-stage
            // split would be fiction here.
            e_stage: elapsed,
            v_stage: std::time::Duration::ZERO,
            index,
        },
        rounds: 1,
    };
    if telemetry.counters_on() {
        let registry = telemetry.registry();
        registry
            .counter(ev_telemetry::names::SETSPLIT_SCENARIOS_EXAMINED)
            .add(examined as u64);
        registry
            .counter(ev_telemetry::names::SETSPLIT_RECORDED)
            .add(recorded_len as u64);
        registry
            .counter(ev_telemetry::names::VFILTER_GALLERY_HITS)
            .add(cache_hits);
        registry
            .counter(ev_telemetry::names::VFILTER_GALLERY_MISSES)
            .add(extracted as u64);
        let total = cache_hits + extracted as u64;
        if total > 0 {
            registry
                .gauge(ev_telemetry::names::VFILTER_GALLERY_HIT_RATIO)
                .set(cache_hits as f64 / total as f64);
        }
        report.timings.record_to(registry);
        // As in the other parallel paths: Algorithm 3 records whole
        // timestamp snapshots, so the Theorem 4.2/4.4 bounds do not
        // apply and fully_split stays false.
        crate::refine::record_paper_gauges(
            registry,
            targets.len(),
            recorded_len,
            false,
            extracted as u64,
            &report,
        );
    }
    pipeline_span.arg("outcomes", serde::Value::Int(report.outcomes.len() as i128));
    drop(pipeline_span);
    Ok(report)
}

/// The *shape* of an `R`-round splitter DAG with representative virtual
/// costs (snapshot scans dominate), for the makespan models in
/// `BENCH_dag`: [`DagSpec::virtual_makespan`] prices the overlapped
/// schedule, [`DagSpec::barriered_makespan`] the classic
/// stage-at-a-time engine on the same work.
#[must_use]
pub fn round_pipeline_shape(
    rounds: usize,
    snap_cost: u64,
    sig_cost: u64,
    merge_cost: u64,
) -> DagSpec<'static, u64> {
    let mut dag: DagSpec<'static, u64> = DagSpec::new();
    let init = dag.stage("dag_init", 1, Vec::new(), |_, _| 0);
    let mut prev = init;
    for _ in 0..rounds {
        let snap = dag.stage("dag_snapshot", 1, Vec::new(), |_, _| 0);
        dag.set_cost(snap, snap_cost);
        let sig = dag.stage(
            "dag_signatures",
            SIG_PARTITIONS,
            vec![StageDep::narrow(snap), StageDep::narrow(prev)],
            |_, _| 0,
        );
        dag.set_cost(sig, sig_cost);
        let merge = dag.stage(
            "dag_merge",
            1,
            vec![
                StageDep::shuffle(sig),
                StageDep::narrow(snap),
                StageDep::narrow(prev),
            ],
            |_, _| 0,
        );
        dag.set_cost(merge, merge_cost);
        prev = merge;
    }
    let assemble = dag.stage("dag_assemble", 1, vec![StageDep::narrow(prev)], |_, _| 0);
    dag.set_cost(assemble, merge_cost);
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{parallel_match, parallel_split};
    use ev_core::feature::FeatureVector;
    use ev_core::ids::Vid;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario};
    use ev_core::time::Timestamp;
    use ev_mapreduce::{Backend, ClusterConfig, MapReduce};
    use ev_vision::cost::CostModel;

    fn world() -> (EScenarioStore, VideoStore) {
        let layout: Vec<(u64, usize, Vec<u64>)> = vec![
            (0, 0, vec![0, 1, 2, 3]),
            (0, 1, vec![4, 5, 6, 7]),
            (1, 0, vec![0, 1, 4, 5]),
            (1, 1, vec![2, 3, 6, 7]),
            (2, 0, vec![0, 2, 4, 6]),
            (2, 1, vec![1, 3, 5, 7]),
        ];
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for (t, c, people) in &layout {
            let mut e = EScenario::new(CellId::new(*c), Timestamp::new(*t));
            let mut v = VScenario::new(CellId::new(*c), Timestamp::new(*t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 8];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn targets() -> BTreeSet<Eid> {
        (0..8).map(Eid::from_u64).collect()
    }

    #[test]
    fn dag_split_equals_the_mapreduce_split() {
        let (store, _) = world();
        for seed in [0, 3, 7] {
            let split_config = ParallelSplitConfig {
                seed,
                max_iterations: None,
            };
            let engine = MapReduce::new(ClusterConfig {
                workers: 2,
                split_size: 8,
                reduce_partitions: 4,
                ..ClusterConfig::default()
            });
            let reference = parallel_split(&engine, &store, &targets(), &split_config).unwrap();
            let dag = dag_split(
                &DagConfig::new(2),
                &store,
                &targets(),
                &split_config,
                Telemetry::disabled(),
            )
            .unwrap();
            assert_eq!(dag.recorded, reference.recorded, "seed={seed}");
            assert_eq!(dag.lists, reference.lists, "seed={seed}");
            assert_eq!(dag.partition, reference.partition, "seed={seed}");
            assert_eq!(
                dag.scenarios_examined, reference.scenarios_examined,
                "seed={seed}"
            );
        }
    }

    #[test]
    fn dag_split_respects_the_iteration_cap() {
        let (store, _) = world();
        let split_config = ParallelSplitConfig {
            seed: 0,
            max_iterations: Some(1),
        };
        let engine = MapReduce::new(ClusterConfig {
            workers: 1,
            split_size: 8,
            reduce_partitions: 4,
            ..ClusterConfig::default()
        });
        let reference = parallel_split(&engine, &store, &targets(), &split_config).unwrap();
        let dag = dag_split(
            &DagConfig::new(1),
            &store,
            &targets(),
            &split_config,
            Telemetry::disabled(),
        )
        .unwrap();
        assert!(!dag.fully_split(), "one timestamp cannot split 8 EIDs");
        assert_eq!(dag.partition, reference.partition);
        assert_eq!(dag.scenarios_examined, reference.scenarios_examined);
    }

    #[test]
    fn dag_split_empty_targets() {
        let (store, _) = world();
        let out = dag_split(
            &DagConfig::new(2),
            &store,
            &BTreeSet::new(),
            &ParallelSplitConfig {
                seed: 0,
                max_iterations: None,
            },
            Telemetry::disabled(),
        )
        .unwrap();
        assert!(out.recorded.is_empty());
        assert!(out.lists.is_empty());
    }

    #[test]
    fn dag_match_agrees_with_the_mapreduce_path() {
        let (store, video) = world();
        let split_config = ParallelSplitConfig {
            seed: 3,
            max_iterations: None,
        };
        let report = dag_match(
            &DagConfig::new(4),
            &store,
            &video,
            &targets(),
            &split_config,
            &VFilterConfig::default(),
            Telemetry::disabled(),
        )
        .unwrap();
        let (store2, video2) = world();
        let engine = MapReduce::new(ClusterConfig {
            workers: 1,
            split_size: 8,
            reduce_partitions: 4,
            ..ClusterConfig::default()
        });
        let reference = parallel_match(
            &engine,
            &store2,
            &video2,
            &targets(),
            &split_config,
            &VFilterConfig::default(),
        )
        .unwrap();
        assert_eq!(report.outcomes, reference.outcomes);
        assert_eq!(report.lists, reference.lists);
        assert_eq!(report.selected_scenarios, reference.selected_scenarios);
    }

    #[test]
    fn round_pipeline_shape_overlaps() {
        let dag = round_pipeline_shape(6, 32, 2, 4);
        let barriered = dag.barriered_makespan(4);
        let overlapped = dag.virtual_makespan(4);
        assert!(
            overlapped < barriered,
            "snapshot scans must overlap: {overlapped} vs {barriered}"
        );
    }

    #[test]
    fn simulated_backend_reference_is_irrelevant_to_flow() {
        // Guard: the DAG path never consults the engine backend; the
        // split must also match a Simulated-backend engine run.
        let (store, _) = world();
        let split_config = ParallelSplitConfig {
            seed: 5,
            max_iterations: None,
        };
        let engine = MapReduce::new(ClusterConfig {
            workers: 3,
            split_size: 8,
            reduce_partitions: 4,
            backend: Backend::Simulated,
            ..ClusterConfig::default()
        });
        let reference = parallel_split(&engine, &store, &targets(), &split_config).unwrap();
        let dag = dag_split(
            &DagConfig::new(3),
            &store,
            &targets(),
            &split_config,
            Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(dag.lists, reference.lists);
        assert_eq!(dag.recorded, reference.recorded);
    }
}
