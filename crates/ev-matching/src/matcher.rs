//! The high-level matching API with elastic matching sizes.
//!
//! The paper supports "single, multiple and universal EID-VID matching"
//! (§I). [`EvMatcher`] wraps the whole pipeline behind three calls:
//!
//! * [`match_one`](EvMatcher::match_one) — one EID. Set splitting
//!   degenerates on a one-element universe (the partition starts fully
//!   split), so this path uses the per-EID greedy E-filtering of the EDP
//!   family, which is exactly what a single-target query wants.
//! * [`match_many`](EvMatcher::match_many) — a requested EID set, via
//!   set splitting + VID filtering + refinement, sequentially or on the
//!   MapReduce engine.
//! * [`match_universal`](EvMatcher::match_universal) — every EID present
//!   in the E-data gets labeled; afterwards any query is an index lookup.
//!   "Note that the larger the matching size is, the less time it costs
//!   per EID-VID pair" (§I).

use crate::edp::{efilter_one, EdpConfig};
use crate::parallel::{parallel_match, ParallelSplitConfig};
use crate::refine::{match_with_refinement_instrumented, RefineConfig, SplitMode};
use crate::setsplit::SetSplitConfig;
use crate::types::{IndexCounters, MatchReport, StageTimings};
use crate::vfilter::{filter_one, VFilterConfig};
use ev_core::ids::Eid;
use ev_mapreduce::{ClusterConfig, MapReduce};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_telemetry::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// How [`EvMatcher::match_many`] executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Single-threaded reference pipeline with refinement (Algorithm 2).
    Sequential,
    /// MapReduce pipeline (Algorithm 3) on a simulated cluster.
    Parallel(ClusterConfig),
    /// Cell-sharded pipeline on this many real threads of the `ev-exec`
    /// work-stealing pool; the report is byte-identical for every
    /// thread count (see [`crate::sharded`]).
    Sharded(usize),
    /// The whole pipeline — every splitting round plus VID filtering —
    /// as **one submission** to the lineage-tracking stage-DAG
    /// scheduler on this many threads (see [`crate::dagflow`]).
    /// Independent rounds overlap instead of barriering, and a worker
    /// panic recomputes only the lost partitions. The report is
    /// byte-identical to [`ExecutionMode::Sharded`] at every thread
    /// count.
    Dag(usize),
}

/// Matcher configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Splitting semantics: ideal or practical (vague zones).
    pub mode: SplitMode,
    /// Scenario selection for the splitting stage.
    pub split: SetSplitConfig,
    /// VID filtering settings.
    pub vfilter: VFilterConfig,
    /// Refinement round budget (sequential execution only).
    pub max_rounds: u32,
    /// Sequential or parallel execution.
    pub execution: ExecutionMode,
}

impl Default for MatcherConfig {
    /// Defaults to the **practical** splitting semantics: real E-data has
    /// drift, and ideal-mode lists would trust vague appearances that
    /// point at the wrong cell's footage. Use [`SplitMode::Ideal`] only
    /// on clean data.
    fn default() -> Self {
        MatcherConfig {
            mode: SplitMode::Practical,
            split: SetSplitConfig::default(),
            vfilter: VFilterConfig::default(),
            max_rounds: 3,
            execution: ExecutionMode::Sequential,
        }
    }
}

/// The facade over the EV-Matching pipeline.
#[derive(Debug)]
pub struct EvMatcher<'a> {
    estore: &'a EScenarioStore,
    video: &'a VideoStore,
    config: MatcherConfig,
    telemetry: Telemetry,
}

impl<'a> EvMatcher<'a> {
    /// Creates a matcher over the given stores.
    #[must_use]
    pub fn new(estore: &'a EScenarioStore, video: &'a VideoStore, config: MatcherConfig) -> Self {
        EvMatcher {
            estore,
            video,
            config,
            telemetry: Telemetry::disabled().clone(),
        }
    }

    /// Creates a matcher over any [`StoreBackend`] — the backend owns
    /// the stores (in memory, or loaded from an `ev-disk` directory)
    /// and the matcher borrows them for its lifetime.
    #[must_use]
    pub fn from_backend<B: StoreBackend>(backend: &'a B, config: MatcherConfig) -> Self {
        EvMatcher::new(backend.estore(), backend.video(), config)
    }

    /// Attaches a telemetry handle; every pipeline the matcher runs —
    /// including the MapReduce engine in parallel mode — records spans
    /// and metrics through it.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// The telemetry handle in force (disabled unless attached).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Matches a single EID without touching any other
    /// ("we can find the VID corresponding to one specific EID without
    /// matching other EIDs and VIDs", §I).
    #[must_use]
    pub fn match_one(&self, eid: Eid) -> MatchReport {
        let mut span = self.telemetry.span("match_one", "pipeline");
        let index_before = self.estore.index().stats();
        let e_start = Instant::now();
        let edp_cfg = EdpConfig {
            vfilter: self.config.vfilter,
            max_scenarios_per_eid: None,
            seed: 0,
        };
        let list = efilter_one(self.estore, eid, &edp_cfg);
        let e_stage = e_start.elapsed();

        let v_start = Instant::now();
        let outcome = filter_one(
            eid,
            &list,
            self.video,
            &self.config.vfilter,
            &BTreeSet::new(),
        );
        let v_stage = v_start.elapsed();

        let mut lists = BTreeMap::new();
        lists.insert(eid, list.clone());
        let index_delta = self.estore.index().stats().since(&index_before);
        let report = MatchReport {
            outcomes: vec![outcome],
            lists,
            selected_scenarios: list.into_iter().collect(),
            timings: StageTimings {
                e_stage,
                v_stage,
                index: IndexCounters {
                    postings_probed: index_delta.postings_probed,
                    cache_hits: 0,
                    scans_avoided: index_delta.scans_avoided,
                },
            },
            rounds: 1,
        };
        if self.telemetry.counters_on() {
            report.timings.record_to(self.telemetry.registry());
        }
        span.arg(
            "matched",
            serde::Value::Bool(report.outcomes[0].vid.is_some()),
        );
        drop(span);
        report
    }

    /// Matches a set of EIDs simultaneously via EID set splitting.
    ///
    /// # Errors
    ///
    /// Returns [`ev_mapreduce::JobError`] only in parallel mode, when the
    /// engine rejects its configuration or injected faults exhaust a
    /// task's retry budget.
    pub fn match_many(
        &self,
        targets: &BTreeSet<Eid>,
    ) -> Result<MatchReport, ev_mapreduce::JobError> {
        match &self.config.execution {
            ExecutionMode::Sequential => Ok(match_with_refinement_instrumented(
                self.estore,
                self.video,
                targets,
                &RefineConfig {
                    mode: self.config.mode,
                    split: self.config.split,
                    vfilter: self.config.vfilter,
                    max_rounds: self.config.max_rounds,
                },
                &BTreeSet::new(),
                &self.telemetry,
            )),
            ExecutionMode::Parallel(cluster) => {
                let engine = MapReduce::new(cluster.clone()).with_telemetry(&self.telemetry);
                parallel_match(
                    &engine,
                    self.estore,
                    self.video,
                    targets,
                    &ParallelSplitConfig {
                        seed: self.split_seed(),
                        max_iterations: None,
                    },
                    &self.config.vfilter,
                )
            }
            ExecutionMode::Sharded(threads) => crate::sharded::sharded_match(
                *threads,
                self.estore,
                self.video,
                targets,
                &ParallelSplitConfig {
                    seed: self.split_seed(),
                    max_iterations: None,
                },
                &self.config.vfilter,
                &self.telemetry,
            ),
            ExecutionMode::Dag(threads) => crate::dagflow::dag_match(
                &ev_mapreduce::DagConfig::new(*threads),
                self.estore,
                self.video,
                targets,
                &ParallelSplitConfig {
                    seed: self.split_seed(),
                    max_iterations: None,
                },
                &self.config.vfilter,
                &self.telemetry,
            ),
        }
    }

    /// The splitting seed implied by the selection strategy.
    fn split_seed(&self) -> u64 {
        match self.config.split.strategy {
            crate::setsplit::SelectionStrategy::RandomTime { seed } => seed,
            _ => 0,
        }
    }

    /// Universal matching: label every EID that appears anywhere in the
    /// E-data.
    ///
    /// # Errors
    ///
    /// Same conditions as [`match_many`](EvMatcher::match_many).
    pub fn match_universal(&self) -> Result<MatchReport, ev_mapreduce::JobError> {
        let universe: BTreeSet<Eid> = self
            .estore
            .iter()
            .flat_map(|s| s.eids().collect::<Vec<_>>())
            .collect();
        self.match_many(&universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_core::Vid;
    use ev_vision::cost::CostModel;

    fn world() -> (EScenarioStore, VideoStore) {
        let layout: Vec<(u64, usize, Vec<u64>)> = vec![
            (0, 0, vec![0, 1]),
            (0, 1, vec![2, 3]),
            (1, 0, vec![0, 2]),
            (1, 1, vec![1, 3]),
            (2, 0, vec![0, 3]),
            (2, 1, vec![1, 2]),
        ];
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for (t, c, people) in &layout {
            let mut e = EScenario::new(CellId::new(*c), Timestamp::new(*t));
            let mut v = VScenario::new(CellId::new(*c), Timestamp::new(*t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 4];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).unwrap(),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    #[test]
    fn match_one_finds_the_right_vid() {
        let (store, video) = world();
        let matcher = EvMatcher::new(&store, &video, MatcherConfig::default());
        let report = matcher.match_one(Eid::from_u64(2));
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].vid, Some(Vid::new(2)));
        assert!(report.selected_count() >= 2);
    }

    #[test]
    fn match_many_sequential() {
        let (store, video) = world();
        let matcher = EvMatcher::new(&store, &video, MatcherConfig::default());
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let report = matcher.match_many(&targets).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn match_many_parallel() {
        let (store, video) = world();
        let config = MatcherConfig {
            execution: ExecutionMode::Parallel(ClusterConfig {
                workers: 3,
                split_size: 2,
                reduce_partitions: 2,
                ..ClusterConfig::default()
            }),
            ..MatcherConfig::default()
        };
        let matcher = EvMatcher::new(&store, &video, config);
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let report = matcher.match_many(&targets).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn match_many_sharded() {
        let (store, video) = world();
        let config = MatcherConfig {
            execution: ExecutionMode::Sharded(3),
            ..MatcherConfig::default()
        };
        let matcher = EvMatcher::new(&store, &video, config);
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let report = matcher.match_many(&targets).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn match_many_dag() {
        let (store, video) = world();
        let config = MatcherConfig {
            execution: ExecutionMode::Dag(3),
            ..MatcherConfig::default()
        };
        let matcher = EvMatcher::new(&store, &video, config);
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let report = matcher.match_many(&targets).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        for o in &report.outcomes {
            assert_eq!(o.vid.map(Vid::as_u64), Some(o.eid.as_u64()));
        }
    }

    #[test]
    fn universal_matching_through_the_dag_is_one_submission() {
        let (store, video) = world();
        let config = MatcherConfig {
            execution: ExecutionMode::Dag(2),
            ..MatcherConfig::default()
        };
        let matcher = EvMatcher::new(&store, &video, config);
        let report = matcher.match_universal().unwrap();
        assert_eq!(report.outcomes.len(), 4, "4 distinct EIDs in E-data");
        assert!(report.majority_rate() > 0.9);
        assert_eq!(report.rounds, 1, "one DAG submission covers the job");
    }

    #[test]
    fn universal_matching_covers_every_eid_in_e_data() {
        let (store, video) = world();
        let matcher = EvMatcher::new(&store, &video, MatcherConfig::default());
        let report = matcher.match_universal().unwrap();
        assert_eq!(report.outcomes.len(), 4, "4 distinct EIDs in E-data");
        assert!(report.majority_rate() > 0.9);
    }

    #[test]
    fn practical_mode_through_the_facade() {
        let (store, video) = world();
        let config = MatcherConfig {
            mode: SplitMode::Practical,
            ..MatcherConfig::default()
        };
        let matcher = EvMatcher::new(&store, &video, config);
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let report = matcher.match_many(&targets).unwrap();
        assert_eq!(report.outcomes.len(), 4);
    }
}
