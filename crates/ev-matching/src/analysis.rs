//! Instrumentation and checks for the paper's analytical results
//! (§IV-D: Theorems 4.1–4.4).
//!
//! The paper proves properties of EID set splitting, and this module
//! turns them into something executable:
//!
//! * **Theorem 4.1** — the recorded scenarios alone suffice to
//!   distinguish the cohort: [`audit_split`] replays them against a
//!   fresh partition and checks it reaches the same granularity
//!   (`replay_consistent`).
//! * **Theorem 4.2** — the ideal setting needs between `log2(n)` and
//!   `n − 1` effective scenarios ([`theorem_4_2_bounds`]); the lower
//!   bound only binds fully-split runs.
//! * **Theorem 4.4** — the practical (vague-zone, Theorem 4.3) setting
//!   pays for drift tolerance with the wider upper bound of
//!   [`theorem_4_4_bounds`].
//!
//! [`audit_split`] backs the `evm_theorem_lower_bound` /
//! `evm_theorem_upper_bound` telemetry gauges that
//! `evmatch check-metrics` gates on, and [`list_length_stats`] computes
//! the per-EID list-length distribution whose mean is paper **Fig. 7**.
//! The bounds are asserted on real splits in
//! `crates/ev-matching/tests/index_equivalence.rs`.

use crate::setsplit::SplitOutput;
use ev_core::ids::Eid;
use ev_core::partition::EidPartition;
use ev_store::EScenarioStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The scenario-count bounds of Theorem 4.2 (ideal setting):
/// `log2(n) ≤ #effective ≤ n − 1` to distinguish `n` EIDs.
#[must_use]
pub fn theorem_4_2_bounds(n: usize) -> (usize, usize) {
    if n <= 1 {
        return (0, 0);
    }
    let lower = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2 n)
    (lower, n - 1)
}

/// The scenario-count bounds of Theorem 4.4 (practical setting):
/// `log2(n) ≤ #effective ≤ n²`.
#[must_use]
pub fn theorem_4_4_bounds(n: usize) -> (usize, usize) {
    if n <= 1 {
        return (0, 0);
    }
    (theorem_4_2_bounds(n).0, n * n)
}

/// A structured audit of a completed set-splitting run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitAudit {
    /// Requested universe size.
    pub universe: usize,
    /// EIDs distinguished by the run.
    pub distinguished: usize,
    /// Effective scenarios recorded.
    pub recorded: usize,
    /// Lower bound of Theorem 4.2 for this universe.
    pub lower_bound: usize,
    /// Upper bound of Theorem 4.2 for this universe.
    pub upper_bound: usize,
    /// Whether the recorded count is within the theorem's bounds
    /// (the lower bound only binds fully-split runs).
    pub within_bounds: bool,
    /// Whether replaying the recorded scenarios reproduces the final
    /// partition — the constructive core of Theorem 4.1.
    pub replay_consistent: bool,
}

/// Audits a [`SplitOutput`] against Theorems 4.1 and 4.2.
#[must_use]
pub fn audit_split(
    store: &EScenarioStore,
    targets: &BTreeSet<Eid>,
    out: &SplitOutput,
) -> SplitAudit {
    let n = targets.len();
    let (lower, upper) = theorem_4_2_bounds(n);
    let fully = out.fully_split();
    let within = out.recorded.len() <= upper && (!fully || out.recorded.len() >= lower);

    // Replay: the recorded scenarios alone must rebuild the same
    // partition granularity.
    let mut replay = EidPartition::new(targets.iter().copied());
    for id in &out.recorded {
        if let Some(s) = store.get(*id) {
            let c: BTreeSet<Eid> = s.eids().filter(|e| targets.contains(e)).collect();
            replay.split_by(&c);
        }
    }
    let replay_consistent = replay.block_count() == out.partition.block_count();

    SplitAudit {
        universe: n,
        distinguished: out.partition.distinguished().count(),
        recorded: out.recorded.len(),
        lower_bound: lower,
        upper_bound: upper,
        within_bounds: within,
        replay_consistent,
    }
}

/// Distribution statistics of per-EID scenario-list lengths (paper Fig. 7
/// reports the mean).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ListLengthStats {
    /// Number of lists.
    pub count: usize,
    /// Shortest list.
    pub min: usize,
    /// Longest list.
    pub max: usize,
    /// Mean length.
    pub mean: f64,
}

/// Computes list-length statistics for a splitting output.
#[must_use]
pub fn list_length_stats(out: &SplitOutput) -> ListLengthStats {
    let lengths: Vec<usize> = out.lists.values().map(Vec::len).collect();
    if lengths.is_empty() {
        return ListLengthStats {
            count: 0,
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    ListLengthStats {
        count: lengths.len(),
        min: *lengths.iter().min().expect("non-empty"),
        max: *lengths.iter().max().expect("non-empty"),
        mean: lengths.iter().sum::<usize>() as f64 / lengths.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setsplit::{split_ideal, SetSplitConfig};
    use ev_core::region::CellId;
    use ev_core::scenario::{EScenario, ZoneAttr};
    use ev_core::time::Timestamp;

    #[test]
    fn bounds_formulas() {
        assert_eq!(theorem_4_2_bounds(0), (0, 0));
        assert_eq!(theorem_4_2_bounds(1), (0, 0));
        assert_eq!(theorem_4_2_bounds(2), (1, 1));
        assert_eq!(theorem_4_2_bounds(8), (3, 7));
        assert_eq!(theorem_4_2_bounds(9), (4, 8));
        assert_eq!(theorem_4_2_bounds(1000), (10, 999));
        assert_eq!(theorem_4_4_bounds(8), (3, 64));
        assert_eq!(theorem_4_4_bounds(1), (0, 0));
    }

    fn scenario(cell: usize, time: u64, eids: &[u64]) -> EScenario {
        let mut s = EScenario::new(CellId::new(cell), Timestamp::new(time));
        for &e in eids {
            s.insert(Eid::from_u64(e), ZoneAttr::Inclusive);
        }
        s
    }

    #[test]
    fn audit_of_a_clean_run_passes() {
        let store =
            EScenarioStore::from_scenarios(vec![scenario(0, 0, &[2, 3]), scenario(1, 1, &[1, 3])]);
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let out = split_ideal(&store, &targets, &SetSplitConfig::default());
        let audit = audit_split(&store, &targets, &out);
        assert_eq!(audit.universe, 4);
        assert_eq!(audit.distinguished, 4);
        assert_eq!(audit.recorded, 2);
        assert!(audit.within_bounds, "{audit:?}");
        assert!(audit.replay_consistent);
    }

    #[test]
    fn audit_flags_partial_runs_consistently() {
        // Inseparable pair: never fully split, lower bound not binding.
        let store = EScenarioStore::from_scenarios(vec![scenario(0, 0, &[0, 1])]);
        let targets: BTreeSet<Eid> = (0..2).map(Eid::from_u64).collect();
        let out = split_ideal(&store, &targets, &SetSplitConfig::default());
        let audit = audit_split(&store, &targets, &out);
        assert_eq!(audit.distinguished, 0);
        assert!(audit.within_bounds);
        assert!(audit.replay_consistent);
    }

    #[test]
    fn list_stats() {
        let store =
            EScenarioStore::from_scenarios(vec![scenario(0, 0, &[2, 3]), scenario(1, 1, &[1, 3])]);
        let targets: BTreeSet<Eid> = (0..4).map(Eid::from_u64).collect();
        let out = split_ideal(&store, &targets, &SetSplitConfig::default());
        let stats = list_length_stats(&out);
        assert_eq!(stats.count, 4);
        assert!(stats.max >= 2, "EID 3 is in both scenarios");
        assert!(stats.mean > 0.0);
        assert_eq!(
            stats.min, 0,
            "EID 0 appears in no scenario at all, so no anchor exists"
        );
    }

    #[test]
    fn empty_output_stats() {
        let store = EScenarioStore::from_scenarios(vec![]);
        let targets: BTreeSet<Eid> = BTreeSet::new();
        let out = split_ideal(&store, &targets, &SetSplitConfig::default());
        let stats = list_length_stats(&out);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean, 0.0);
    }
}
