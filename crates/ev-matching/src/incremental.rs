//! Incremental matching and partition maintenance over a growing
//! corpus.
//!
//! Surveillance data never stops arriving, and this module holds the
//! two pieces that keep pace with it without re-running the batch
//! pipeline from scratch:
//!
//! 1. **Report-level reuse** — [`update_matches`] keeps the matches of
//!    a previous run that are still confident and re-runs the pipeline
//!    only for the EIDs that need it (newly requested ones and
//!    previously ambiguous ones), with the kept VIDs excluded from
//!    candidacy so incremental runs cannot steal an established
//!    identity.
//! 2. **Partition-level delta-updates** — [`IncrementalSplit`] keeps
//!    the live state of a chronological Algorithm-1 run (the EID
//!    partition, the recorded splitters, and the pre-padding scenario
//!    lists) so that freshly ingested scenarios *refine the existing
//!    blocks* instead of recomputing the whole split. This is the
//!    engine behind the streaming `evmatch serve` mode.
//!
//! # The delta-update rule
//!
//! [`SelectionStrategy::Chronological`] examines scenarios in
//! [`ScenarioId`] order — which is time-major, because `ScenarioId`
//! orders by `(time, cell)`. A streaming ingest only ever appends
//! scenarios with ids strictly greater than everything already stored
//! (that is the contract of `EScenarioStore::ingest`'s splice path), so
//! the scenarios a from-scratch run would examine form a *prefix-stable
//! sequence*: appending a batch extends the sequence at the end and
//! changes nothing before it. Since every per-scenario decision of
//! Algorithm 1 depends only on the partition state accumulated so far
//! and the scenario's own target intersection, replaying just the new
//! suffix ([`IncrementalSplit::absorb`]) reproduces the from-scratch
//! run exactly:
//!
//! ```text
//! absorb(S₀); absorb(S₁ \ S₀); …; absorb(Sₙ \ Sₙ₋₁)
//!     ≡ split_ideal(Sₙ)            (chronological strategy)
//! ```
//!
//! The loop's stop conditions are monotone — a fully split partition
//! stays fully split, and the examined-scenario cap only fills up — so
//! a run that stopped early stays stopped, again matching the
//! from-scratch behaviour. The equivalence is proptested in
//! `tests/incremental_split_equivalence.rs` against arbitrary
//! prefix/suffix splits of a generated pool.
//!
//! The **padding passes** (anchors, list extension, uniqueness against
//! the universe) are *not* prefix-stable: they consult the whole store
//! at output time. [`IncrementalSplit`] therefore keeps its scenario
//! lists pre-padding and re-runs those passes against the current store
//! in [`IncrementalSplit::output`] — they are cheap relative to the
//! split itself, and running them late is exactly what the batch
//! pipeline does too.
//!
//! Other selection strategies are **not** delta-safe:
//! [`SelectionStrategy::RandomTime`] reshuffles the timestamp draw when
//! the store grows, and [`SelectionStrategy::GreedyBalanced`] may
//! prefer a new scenario over previously chosen ones. Both would need
//! full recomputation, which is why [`IncrementalSplit::new`] insists
//! on the chronological strategy.
//!
//! # Report-level reuse
//!
//! Combine [`update_matches`] with
//! [`EScenarioStore::merged`](ev_store::EScenarioStore::merged) and
//! [`VideoStore::merged`](ev_store::VideoStore::merged) to append an
//! ingest batch:
//!
//! ```text
//! let estore = day1.estore.merged(&day2_estore);
//! let video  = day1.video.merged(&day2_video);
//! let update = update_matches(&old_report, &new_eids, &estore, &video, &config);
//! ```

use crate::refine::{match_with_refinement_excluding, RefineConfig};
use crate::setsplit::{self, SelectionStrategy, SetSplitConfig, SplitOutput};
use crate::types::{MatchOutcome, MatchReport, ScenarioList};
use ev_core::ids::{Eid, Vid};
use ev_core::partition::EidPartition;
use ev_core::scenario::ScenarioId;
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use ev_telemetry::{names, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What one [`IncrementalSplit::absorb`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Scenarios examined by this delta (effective or not).
    pub scenarios_absorbed: usize,
    /// Splitters recorded by this delta.
    pub splitters_recorded: usize,
    /// Net partition blocks created by this delta's refinements.
    pub blocks_split: usize,
}

/// Live state of a chronological Algorithm-1 run that new scenarios
/// refine instead of restarting — see the [module docs](self) for the
/// delta-update rule and its equivalence argument.
///
/// ```
/// use ev_matching::incremental::IncrementalSplit;
/// use ev_matching::setsplit::{split_ideal, SelectionStrategy, SetSplitConfig};
/// # use ev_core::{Eid, ZoneAttr};
/// # use ev_core::region::CellId;
/// # use ev_core::scenario::EScenario;
/// # use ev_core::time::Timestamp;
/// # use ev_store::EScenarioStore;
/// # use std::collections::BTreeSet;
/// # fn scenario(t: u64, c: usize, people: &[u64]) -> EScenario {
/// #     let mut s = EScenario::new(CellId::new(c), Timestamp::new(t));
/// #     for &p in people { s.insert(Eid::from_u64(p), ZoneAttr::Inclusive); }
/// #     s
/// # }
/// let config = SetSplitConfig {
///     strategy: SelectionStrategy::Chronological,
///     ..SetSplitConfig::default()
/// };
/// let targets: BTreeSet<_> = [0u64, 1, 2].map(Eid::from_u64).into();
///
/// // Day 1 comes up short: EIDs 1 and 2 are never separated.
/// let mut store = EScenarioStore::from_scenarios(vec![scenario(0, 0, &[0, 1, 2])]);
/// let mut live = IncrementalSplit::new(&targets, &config);
/// live.absorb(&store);
/// assert!(!live.is_fully_split());
///
/// // Day 2 streams in; only the new scenarios are examined.
/// let delta = store.ingest(vec![scenario(5, 1, &[1]), scenario(6, 0, &[2])]);
/// assert!(!delta.rebuilt, "appends splice, preserving the contract");
/// let stats = live.absorb(&store);
/// assert_eq!(stats.scenarios_absorbed, 2);
/// assert!(live.is_fully_split());
///
/// // The refined state equals a from-scratch rebuild, list padding and all.
/// assert_eq!(live.output(&store), split_ideal(&store, &targets, &config));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSplit {
    targets: BTreeSet<Eid>,
    config: SetSplitConfig,
    partition: EidPartition,
    recorded: Vec<ScenarioId>,
    /// Pre-padding lists: recorded splitters containing each EID. The
    /// padding passes run against the *current* store in [`Self::output`].
    core_lists: BTreeMap<Eid, ScenarioList>,
    examined: usize,
    frontier: Option<ScenarioId>,
}

impl IncrementalSplit {
    /// Starts an empty incremental split over `targets`; feed it stores
    /// with [`absorb`](Self::absorb).
    ///
    /// # Panics
    ///
    /// If `config.strategy` is not
    /// [`SelectionStrategy::Chronological`] — the only strategy whose
    /// selection sequence is prefix-stable under appends (see the
    /// [module docs](self)).
    #[must_use]
    pub fn new(targets: &BTreeSet<Eid>, config: &SetSplitConfig) -> Self {
        assert!(
            matches!(config.strategy, SelectionStrategy::Chronological),
            "incremental delta-updates require SelectionStrategy::Chronological"
        );
        IncrementalSplit {
            targets: targets.clone(),
            config: *config,
            partition: EidPartition::new(targets.iter().copied()),
            recorded: Vec::new(),
            core_lists: targets.iter().map(|&e| (e, Vec::new())).collect(),
            examined: 0,
            frontier: None,
        }
    }

    /// Whether every target is alone in its block.
    #[must_use]
    pub fn is_fully_split(&self) -> bool {
        self.partition.is_fully_split()
    }

    /// The current partition.
    #[must_use]
    pub fn partition(&self) -> &EidPartition {
        &self.partition
    }

    /// Effective splitters recorded so far, in application order.
    #[must_use]
    pub fn recorded(&self) -> &[ScenarioId] {
        &self.recorded
    }

    /// Scenarios examined so far (effective or not).
    #[must_use]
    pub fn scenarios_examined(&self) -> usize {
        self.examined
    }

    /// The largest scenario id examined so far; the next
    /// [`absorb`](Self::absorb) resumes strictly after it.
    #[must_use]
    pub fn frontier(&self) -> Option<ScenarioId> {
        self.frontier
    }

    /// Replays Algorithm 1 over the scenarios of `store` beyond the
    /// current frontier, refining existing partition blocks in place.
    ///
    /// The first call (frontier `None`) walks the whole store — that
    /// *is* the from-scratch run. Later calls walk only the appended
    /// suffix. The caller must uphold the splice contract: `store` has
    /// only gained scenarios with ids strictly greater than the
    /// frontier since the last call (`EScenarioStore::ingest` reports
    /// `rebuilt == true` when a batch violated it; rebuild this state
    /// with [`new`](Self::new) + `absorb` in that case).
    pub fn absorb(&mut self, store: &EScenarioStore) -> DeltaStats {
        self.absorb_instrumented(store, Telemetry::disabled())
    }

    /// [`absorb`](Self::absorb) with telemetry: adds the delta's
    /// examined/recorded/split counts to the `evm_incr_*` counters and
    /// updates the partition-blocks gauge.
    pub fn absorb_instrumented(&mut self, store: &EScenarioStore, tel: &Telemetry) -> DeltaStats {
        let cap = self.config.max_scenarios.unwrap_or(usize::MAX);
        let blocks_before = self.partition.block_count();
        let recorded_before = self.recorded.len();
        let mut absorbed = 0usize;

        // `store.iter()` / `iter_after` yield id order = the
        // chronological examination order of `split_ideal`.
        let suffix: Box<dyn Iterator<Item = &ev_core::scenario::EScenario>> = match self.frontier {
            Some(f) => Box::new(store.iter_after(f)),
            None => Box::new(store.iter()),
        };
        for scenario in suffix {
            if self.partition.is_fully_split() || self.examined >= cap {
                break;
            }
            self.examined += 1;
            absorbed += 1;
            self.frontier = Some(scenario.id());
            let c: BTreeSet<Eid> = self
                .targets
                .iter()
                .copied()
                .filter(|&e| scenario.contains(e))
                .collect();
            if c.is_empty() {
                store.index().note_scan_avoided();
            } else {
                setsplit::apply_candidate(
                    scenario.id(),
                    &c,
                    &mut self.partition,
                    &mut self.recorded,
                    &mut self.core_lists,
                );
            }
        }

        let stats = DeltaStats {
            scenarios_absorbed: absorbed,
            splitters_recorded: self.recorded.len() - recorded_before,
            blocks_split: self.partition.block_count() - blocks_before,
        };
        if tel.counters_on() {
            let registry = tel.registry();
            registry
                .counter(names::INCR_SCENARIOS_ABSORBED)
                .add(stats.scenarios_absorbed as u64);
            registry
                .counter(names::INCR_SPLITTERS_RECORDED)
                .add(stats.splitters_recorded as u64);
            registry
                .counter(names::INCR_BLOCKS_SPLIT)
                .add(stats.blocks_split as u64);
            registry
                .gauge(names::INCR_PARTITION_BLOCKS)
                .set(self.partition.block_count() as f64);
        }
        stats
    }

    /// Materializes the full [`SplitOutput`] by cloning the core state
    /// and running the padding passes (anchors, minimum list length,
    /// uniqueness against the EID universe) over the *current* store —
    /// producing exactly what `split_ideal` over that store would.
    #[must_use]
    pub fn output(&self, store: &EScenarioStore) -> SplitOutput {
        let mut lists = self.core_lists.clone();
        setsplit::attach_anchors(store, &mut lists, false);
        // Chronological runs pad with seed 0, matching `split_ideal`.
        setsplit::extend_lists(store, &mut lists, self.config.min_list_len, 0, false, false);
        setsplit::ensure_unique_against_universe(store, &mut lists, 0, false, false);
        SplitOutput {
            recorded: self.recorded.clone(),
            lists,
            partition: self.partition.clone(),
            scenarios_examined: self.examined,
        }
    }
}

/// The result of an incremental update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalUpdate {
    /// The combined report: kept matches plus fresh ones, in EID order.
    pub report: MatchReport,
    /// EIDs whose match was kept from the previous run untouched.
    pub kept: BTreeSet<Eid>,
    /// EIDs that were (re-)matched in this update.
    pub rematched: BTreeSet<Eid>,
}

/// Updates a previous matching result against the (grown) corpus, read
/// through any [`StoreBackend`] — in memory or a reopened `ev-disk`
/// directory, as in a day-over-day ingest.
///
/// * Outcomes of `previous` that are still confident
///   ([`MatchOutcome::is_confident`] under the configured margin) are
///   kept verbatim — their footage has already been paid for.
/// * Everything else — ambiguous previous outcomes and the EIDs in
///   `new_eids` — runs through the full refinement pipeline on the
///   current stores, with the kept VIDs excluded from candidacy.
#[must_use]
pub fn update_matches_on<B: StoreBackend>(
    previous: &MatchReport,
    new_eids: &BTreeSet<Eid>,
    backend: &B,
    config: &RefineConfig,
) -> IncrementalUpdate {
    update_matches(
        previous,
        new_eids,
        backend.estore(),
        backend.video(),
        config,
    )
}

/// See [`update_matches_on`]; this is the concrete-store form.
#[must_use]
pub fn update_matches(
    previous: &MatchReport,
    new_eids: &BTreeSet<Eid>,
    store: &EScenarioStore,
    video: &VideoStore,
    config: &RefineConfig,
) -> IncrementalUpdate {
    let mut kept_outcomes: BTreeMap<Eid, MatchOutcome> = BTreeMap::new();
    let mut pending: BTreeSet<Eid> = new_eids.clone();
    let mut kept_vids: BTreeSet<Vid> = BTreeSet::new();

    for outcome in &previous.outcomes {
        if outcome.is_confident(config.vfilter.min_margin) {
            if let Some(vid) = outcome.vid {
                kept_vids.insert(vid);
            }
            kept_outcomes.insert(outcome.eid, outcome.clone());
        } else {
            pending.insert(outcome.eid);
        }
    }
    // A "new" EID that already has a confident match needs no work.
    pending.retain(|e| !kept_outcomes.contains_key(e));

    let fresh = if pending.is_empty() {
        MatchReport::default()
    } else {
        match_with_refinement_excluding(store, video, &pending, config, &kept_vids)
    };

    // Assemble the combined report.
    let mut report = MatchReport {
        rounds: fresh.rounds.max(1),
        timings: fresh.timings,
        ..MatchReport::default()
    };
    for (eid, list) in &previous.lists {
        if kept_outcomes.contains_key(eid) {
            report.lists.insert(*eid, list.clone());
            report.selected_scenarios.extend(list.iter().copied());
        }
    }
    report
        .selected_scenarios
        .extend(fresh.selected_scenarios.iter().copied());
    for (eid, list) in &fresh.lists {
        report.lists.insert(*eid, list.clone());
    }
    let rematched: BTreeSet<Eid> = fresh.outcomes.iter().map(|o| o.eid).collect();
    let kept: BTreeSet<Eid> = kept_outcomes.keys().copied().collect();
    report.outcomes = kept_outcomes.into_values().chain(fresh.outcomes).collect();
    report.outcomes.sort_by_key(|o| o.eid);

    IncrementalUpdate {
        report,
        kept,
        rematched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::match_with_refinement;
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    /// Day 1: persons 0..3 across two cells. Day 2 adds person 3's
    /// discriminating scenarios.
    fn day(layout: &[(u64, usize, &[u64])]) -> (EScenarioStore, VideoStore) {
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for &(t, c, people) in layout {
            let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
            let mut v = VScenario::new(CellId::new(c), Timestamp::new(t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 4];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).expect("valid"),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn targets(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    #[test]
    fn incremental_update_matches_new_eids_without_touching_kept_ones() {
        // Day 1 distinguishes 0,1,2 but EID 3 never appears.
        let day1: &[(u64, usize, &[u64])] = &[
            (0, 0, &[0, 1]),
            (0, 1, &[2]),
            (10, 0, &[0, 2]),
            (10, 1, &[1]),
        ];
        let (estore1, video1) = day(day1);
        let config = RefineConfig::default();
        let report1 = match_with_refinement(&estore1, &video1, &targets(0..3), &config);
        assert!(report1.outcomes.iter().all(|o| o.is_majority()));

        // Day 2 brings EID 3 into view.
        let day2: &[(u64, usize, &[u64])] = &[(20, 0, &[3, 0]), (30, 1, &[3]), (30, 0, &[0])];
        let (estore2, video2) = day(day2);
        let estore = estore1.merged(&estore2);
        let video = video1.merged(&video2);

        let update = update_matches(&report1, &targets([3]), &estore, &video, &config);
        assert_eq!(update.kept, targets(0..3), "day-1 matches survive");
        assert_eq!(update.rematched, targets([3]));
        assert_eq!(update.report.outcomes.len(), 4);
        let o3 = update.report.outcome_of(Eid::from_u64(3)).expect("matched");
        assert_eq!(o3.vid, Some(Vid::new(3)));
        // Kept outcomes are byte-identical to day 1's.
        for eid in 0..3 {
            assert_eq!(
                update.report.outcome_of(Eid::from_u64(eid)),
                report1.outcome_of(Eid::from_u64(eid)),
            );
        }
    }

    #[test]
    fn kept_vids_cannot_be_stolen() {
        let day1: &[(u64, usize, &[u64])] = &[(0, 0, &[0]), (10, 1, &[0])];
        let (estore, video) = day(day1);
        let config = RefineConfig::default();
        let report1 = match_with_refinement(&estore, &video, &targets([0]), &config);
        assert_eq!(
            report1.outcome_of(Eid::from_u64(0)).expect("ran").vid,
            Some(Vid::new(0))
        );
        // EID 9 never appears in E-data; its refinement sees only person
        // 0's footage, but VID 0 is spoken for, so it must stay unmatched
        // rather than steal the identity.
        let update = update_matches(&report1, &targets([9]), &estore, &video, &config);
        let o9 = update.report.outcome_of(Eid::from_u64(9)).expect("present");
        assert_ne!(o9.vid, Some(Vid::new(0)));
    }

    #[test]
    fn empty_update_is_a_no_op() {
        let day1: &[(u64, usize, &[u64])] = &[(0, 0, &[0, 1]), (10, 0, &[0])];
        let (estore, video) = day(day1);
        let config = RefineConfig::default();
        let report1 = match_with_refinement(&estore, &video, &targets(0..2), &config);
        let update = update_matches(&report1, &BTreeSet::new(), &estore, &video, &config);
        assert!(update.rematched.is_empty());
        assert_eq!(update.report.outcomes.len(), report1.outcomes.len());
    }
}
