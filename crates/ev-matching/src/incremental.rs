//! Incremental matching over a growing corpus.
//!
//! Surveillance data never stops arriving. Rather than re-matching the
//! whole cohort whenever new footage lands, [`update_matches`] keeps the
//! matches that are still confident, and re-runs the pipeline only for
//! the EIDs that need it — newly requested ones and previously ambiguous
//! ones — with the kept VIDs excluded from candidacy so incremental runs
//! cannot steal an established identity.
//!
//! Combine it with [`EScenarioStore::merged`](ev_store::EScenarioStore::merged)
//! and [`VideoStore::merged`](ev_store::VideoStore::merged) to append an
//! ingest batch:
//!
//! ```text
//! let estore = day1.estore.merged(&day2_estore);
//! let video  = day1.video.merged(&day2_video);
//! let update = update_matches(&old_report, &new_eids, &estore, &video, &config);
//! ```

use crate::refine::{match_with_refinement_excluding, RefineConfig};
use crate::types::{MatchOutcome, MatchReport};
use ev_core::ids::{Eid, Vid};
use ev_store::{EScenarioStore, StoreBackend, VideoStore};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The result of an incremental update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalUpdate {
    /// The combined report: kept matches plus fresh ones, in EID order.
    pub report: MatchReport,
    /// EIDs whose match was kept from the previous run untouched.
    pub kept: BTreeSet<Eid>,
    /// EIDs that were (re-)matched in this update.
    pub rematched: BTreeSet<Eid>,
}

/// Updates a previous matching result against the (grown) corpus, read
/// through any [`StoreBackend`] — in memory or a reopened `ev-disk`
/// directory, as in a day-over-day ingest.
///
/// * Outcomes of `previous` that are still confident
///   ([`MatchOutcome::is_confident`] under the configured margin) are
///   kept verbatim — their footage has already been paid for.
/// * Everything else — ambiguous previous outcomes and the EIDs in
///   `new_eids` — runs through the full refinement pipeline on the
///   current stores, with the kept VIDs excluded from candidacy.
#[must_use]
pub fn update_matches_on<B: StoreBackend>(
    previous: &MatchReport,
    new_eids: &BTreeSet<Eid>,
    backend: &B,
    config: &RefineConfig,
) -> IncrementalUpdate {
    update_matches(
        previous,
        new_eids,
        backend.estore(),
        backend.video(),
        config,
    )
}

/// See [`update_matches_on`]; this is the concrete-store form.
#[must_use]
pub fn update_matches(
    previous: &MatchReport,
    new_eids: &BTreeSet<Eid>,
    store: &EScenarioStore,
    video: &VideoStore,
    config: &RefineConfig,
) -> IncrementalUpdate {
    let mut kept_outcomes: BTreeMap<Eid, MatchOutcome> = BTreeMap::new();
    let mut pending: BTreeSet<Eid> = new_eids.clone();
    let mut kept_vids: BTreeSet<Vid> = BTreeSet::new();

    for outcome in &previous.outcomes {
        if outcome.is_confident(config.vfilter.min_margin) {
            if let Some(vid) = outcome.vid {
                kept_vids.insert(vid);
            }
            kept_outcomes.insert(outcome.eid, outcome.clone());
        } else {
            pending.insert(outcome.eid);
        }
    }
    // A "new" EID that already has a confident match needs no work.
    pending.retain(|e| !kept_outcomes.contains_key(e));

    let fresh = if pending.is_empty() {
        MatchReport::default()
    } else {
        match_with_refinement_excluding(store, video, &pending, config, &kept_vids)
    };

    // Assemble the combined report.
    let mut report = MatchReport {
        rounds: fresh.rounds.max(1),
        timings: fresh.timings,
        ..MatchReport::default()
    };
    for (eid, list) in &previous.lists {
        if kept_outcomes.contains_key(eid) {
            report.lists.insert(*eid, list.clone());
            report.selected_scenarios.extend(list.iter().copied());
        }
    }
    report
        .selected_scenarios
        .extend(fresh.selected_scenarios.iter().copied());
    for (eid, list) in &fresh.lists {
        report.lists.insert(*eid, list.clone());
    }
    let rematched: BTreeSet<Eid> = fresh.outcomes.iter().map(|o| o.eid).collect();
    let kept: BTreeSet<Eid> = kept_outcomes.keys().copied().collect();
    report.outcomes = kept_outcomes.into_values().chain(fresh.outcomes).collect();
    report.outcomes.sort_by_key(|o| o.eid);

    IncrementalUpdate {
        report,
        kept,
        rematched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::match_with_refinement;
    use ev_core::feature::FeatureVector;
    use ev_core::region::CellId;
    use ev_core::scenario::{Detection, EScenario, VScenario, ZoneAttr};
    use ev_core::time::Timestamp;
    use ev_vision::cost::CostModel;

    /// Day 1: persons 0..3 across two cells. Day 2 adds person 3's
    /// discriminating scenarios.
    fn day(layout: &[(u64, usize, &[u64])]) -> (EScenarioStore, VideoStore) {
        let mut es = Vec::new();
        let mut vs = Vec::new();
        for &(t, c, people) in layout {
            let mut e = EScenario::new(CellId::new(c), Timestamp::new(t));
            let mut v = VScenario::new(CellId::new(c), Timestamp::new(t));
            for &p in people {
                e.insert(Eid::from_u64(p), ZoneAttr::Inclusive);
                let mut f = vec![0.05; 4];
                f[p as usize] = 0.95;
                v.push(Detection {
                    vid: Vid::new(p),
                    feature: FeatureVector::new(f).expect("valid"),
                });
            }
            es.push(e);
            vs.push(v);
        }
        (
            EScenarioStore::from_scenarios(es),
            VideoStore::new(vs, CostModel::free()),
        )
    }

    fn targets(raw: impl IntoIterator<Item = u64>) -> BTreeSet<Eid> {
        raw.into_iter().map(Eid::from_u64).collect()
    }

    #[test]
    fn incremental_update_matches_new_eids_without_touching_kept_ones() {
        // Day 1 distinguishes 0,1,2 but EID 3 never appears.
        let day1: &[(u64, usize, &[u64])] = &[
            (0, 0, &[0, 1]),
            (0, 1, &[2]),
            (10, 0, &[0, 2]),
            (10, 1, &[1]),
        ];
        let (estore1, video1) = day(day1);
        let config = RefineConfig::default();
        let report1 = match_with_refinement(&estore1, &video1, &targets(0..3), &config);
        assert!(report1.outcomes.iter().all(|o| o.is_majority()));

        // Day 2 brings EID 3 into view.
        let day2: &[(u64, usize, &[u64])] = &[(20, 0, &[3, 0]), (30, 1, &[3]), (30, 0, &[0])];
        let (estore2, video2) = day(day2);
        let estore = estore1.merged(&estore2);
        let video = video1.merged(&video2);

        let update = update_matches(&report1, &targets([3]), &estore, &video, &config);
        assert_eq!(update.kept, targets(0..3), "day-1 matches survive");
        assert_eq!(update.rematched, targets([3]));
        assert_eq!(update.report.outcomes.len(), 4);
        let o3 = update.report.outcome_of(Eid::from_u64(3)).expect("matched");
        assert_eq!(o3.vid, Some(Vid::new(3)));
        // Kept outcomes are byte-identical to day 1's.
        for eid in 0..3 {
            assert_eq!(
                update.report.outcome_of(Eid::from_u64(eid)),
                report1.outcome_of(Eid::from_u64(eid)),
            );
        }
    }

    #[test]
    fn kept_vids_cannot_be_stolen() {
        let day1: &[(u64, usize, &[u64])] = &[(0, 0, &[0]), (10, 1, &[0])];
        let (estore, video) = day(day1);
        let config = RefineConfig::default();
        let report1 = match_with_refinement(&estore, &video, &targets([0]), &config);
        assert_eq!(
            report1.outcome_of(Eid::from_u64(0)).expect("ran").vid,
            Some(Vid::new(0))
        );
        // EID 9 never appears in E-data; its refinement sees only person
        // 0's footage, but VID 0 is spoken for, so it must stay unmatched
        // rather than steal the identity.
        let update = update_matches(&report1, &targets([9]), &estore, &video, &config);
        let o9 = update.report.outcome_of(Eid::from_u64(9)).expect("present");
        assert_ne!(o9.vid, Some(Vid::new(0)));
    }

    #[test]
    fn empty_update_is_a_no_op() {
        let day1: &[(u64, usize, &[u64])] = &[(0, 0, &[0, 1]), (10, 0, &[0])];
        let (estore, video) = day(day1);
        let config = RefineConfig::default();
        let report1 = match_with_refinement(&estore, &video, &targets(0..2), &config);
        let update = update_matches(&report1, &BTreeSet::new(), &estore, &video, &config);
        assert!(update.rematched.is_empty());
        assert_eq!(update.report.outcomes.len(), report1.outcomes.len());
    }
}
