//! Shared result types for the matching pipelines.

use ev_core::ids::{Eid, Vid};
use ev_core::scenario::ScenarioId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// The E-Scenario list selected for one EID — its coarse-grained,
/// large-scale trajectory (paper §IV-B2).
pub type ScenarioList = Vec<ScenarioId>;

/// The result of matching one EID.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchOutcome {
    /// The EID that was matched.
    pub eid: Eid,
    /// The matched VID: the majority winner across the scenario list, or
    /// `None` when filtering failed (no scenarios, or no majority).
    pub vid: Option<Vid>,
    /// The per-scenario argmax VIDs, in scenario-list order.
    pub votes: Vec<Vid>,
    /// Fraction of votes the winner received (`0.0` when unmatched).
    pub vote_share: f64,
    /// Joint membership probability of the winner over the list.
    pub confidence: f64,
    /// The winner's joint probability minus the best other candidate's
    /// (`1.0` when the winner was the only candidate). A (near-)zero
    /// margin means the scenario list cannot tell two VIDs apart.
    pub margin: f64,
}

impl MatchOutcome {
    /// An unmatched outcome for `eid`.
    #[must_use]
    pub fn unmatched(eid: Eid) -> Self {
        MatchOutcome {
            eid,
            vid: None,
            votes: Vec::new(),
            vote_share: 0.0,
            confidence: 0.0,
            margin: 0.0,
        }
    }

    /// The explicit **NoEvidence** outcome: the EID's scenario list
    /// produced zero usable votes (no recorded scenarios, no footage
    /// for them, or every candidate excluded/pruned), so there is
    /// nothing to take a majority over. The shape is all-zero — never
    /// `NaN`: `vote_share` must not be computed as `count / 0`.
    /// Distinguish it from a vote-backed miss with
    /// [`is_no_evidence`](MatchOutcome::is_no_evidence).
    #[must_use]
    pub fn no_evidence(eid: Eid) -> Self {
        MatchOutcome::unmatched(eid)
    }

    /// Whether this outcome carries **no evidence at all**: no VID and
    /// an empty vote vector. Zero recorded scenarios must land here —
    /// with explicit `0.0` fields — rather than dividing by an empty
    /// vote count and leaking `NaN` into [`is_majority`] comparisons.
    ///
    /// [`is_majority`]: MatchOutcome::is_majority
    #[must_use]
    pub fn is_no_evidence(&self) -> bool {
        self.vid.is_none() && self.votes.is_empty()
    }

    /// Whether a VID was produced with a strict vote majority — the
    /// paper's accuracy criterion ("the majority of the VIDs chosen from
    /// the scenarios for this EID is the right VID", §VI-B).
    #[must_use]
    pub fn is_majority(&self) -> bool {
        self.vid.is_some() && self.vote_share > 0.5
    }

    /// Whether the match is acceptable to the refinement loop: a strict
    /// majority *and* an unambiguous winner (margin above `min_margin`).
    #[must_use]
    pub fn is_confident(&self, min_margin: f64) -> bool {
        self.is_majority() && self.margin > min_margin
    }
}

/// Usage counters of the index/cache layer across one pipeline run.
///
/// The E stage reads the scenario store through its inverted index
/// ([`ev_store::ScenarioIndex`]); the V stage reads footage through a
/// [`GalleryCache`](crate::vfilter::GalleryCache). The type itself is
/// shared with `ev_mapreduce::JobMetrics` through
/// [`ev_telemetry::IndexCounters`], so both pipelines merge and export
/// the triple through one code path.
pub use ev_telemetry::IndexCounters;

/// Wall-clock timings of the two pipeline stages (paper Figs. 8–9 report
/// E time, V time and their sum), plus the index-layer counters for the
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Time spent selecting scenarios from E-data.
    pub e_stage: Duration,
    /// Time spent extracting and comparing V-data.
    pub v_stage: Duration,
    /// Index and cache usage across both stages.
    pub index: IndexCounters,
}

impl StageTimings {
    /// Total across both stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.e_stage + self.v_stage
    }

    /// Exports the stage wall times and the index counter triple to
    /// their canonical metrics.
    pub fn record_to(&self, registry: &ev_telemetry::MetricsRegistry) {
        registry
            .gauge(ev_telemetry::names::STAGE_E_SECONDS)
            .set(self.e_stage.as_secs_f64());
        registry
            .gauge(ev_telemetry::names::STAGE_V_SECONDS)
            .set(self.v_stage.as_secs_f64());
        self.index.record_to(registry);
    }
}

/// The full report of one matching run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MatchReport {
    /// One outcome per requested EID, in EID order.
    pub outcomes: Vec<MatchOutcome>,
    /// The scenario list selected for each EID.
    pub lists: BTreeMap<Eid, ScenarioList>,
    /// Every distinct scenario selected across all EIDs (reuse counted
    /// once — the quantity of paper Figs. 5–6).
    pub selected_scenarios: BTreeSet<ScenarioId>,
    /// Stage timings.
    pub timings: StageTimings,
    /// Refinement rounds executed (1 when refining never triggered).
    pub rounds: u32,
}

impl MatchReport {
    /// Number of distinct scenarios selected (paper Fig. 5/6 metric).
    #[must_use]
    pub fn selected_count(&self) -> usize {
        self.selected_scenarios.len()
    }

    /// Average scenario-list length per EID (paper Fig. 7 metric).
    #[must_use]
    pub fn scenarios_per_eid(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        let total: usize = self.lists.values().map(Vec::len).sum();
        total as f64 / self.lists.len() as f64
    }

    /// The outcome for a specific EID, if it was requested.
    #[must_use]
    pub fn outcome_of(&self, eid: Eid) -> Option<&MatchOutcome> {
        self.outcomes.iter().find(|o| o.eid == eid)
    }

    /// Fraction of requested EIDs that got a majority match.
    #[must_use]
    pub fn majority_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.is_majority()).count() as f64 / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(eid: u64, vid: Option<u64>, share: f64) -> MatchOutcome {
        MatchOutcome {
            eid: Eid::from_u64(eid),
            vid: vid.map(Vid::new),
            votes: Vec::new(),
            vote_share: share,
            confidence: share,
            margin: share,
        }
    }

    #[test]
    fn unmatched_outcome() {
        let o = MatchOutcome::unmatched(Eid::from_u64(1));
        assert!(o.vid.is_none());
        assert!(!o.is_majority());
    }

    #[test]
    fn no_evidence_is_explicit_and_nan_free() {
        let o = MatchOutcome::no_evidence(Eid::from_u64(9));
        assert!(o.is_no_evidence());
        assert!(!o.is_majority());
        assert_eq!(o.vote_share, 0.0, "0/0 must be 0.0, never NaN");
        assert!(!o.vote_share.is_nan());
        // A vote-backed outcome is not NoEvidence, even when wrong.
        let voted = MatchOutcome {
            votes: vec![Vid::new(3)],
            vid: Some(Vid::new(3)),
            ..MatchOutcome::unmatched(Eid::from_u64(9))
        };
        assert!(!voted.is_no_evidence());
    }

    #[test]
    fn majority_requires_vid_and_share() {
        assert!(outcome(1, Some(2), 0.8).is_majority());
        assert!(!outcome(1, Some(2), 0.5).is_majority(), "strict majority");
        assert!(!outcome(1, None, 0.9).is_majority());
    }

    #[test]
    fn timings_total() {
        let t = StageTimings {
            e_stage: Duration::from_millis(3),
            v_stage: Duration::from_millis(7),
            index: IndexCounters::default(),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn index_counters_merge_componentwise() {
        let a = IndexCounters {
            postings_probed: 1,
            cache_hits: 2,
            scans_avoided: 3,
        };
        let b = IndexCounters {
            postings_probed: 10,
            cache_hits: 20,
            scans_avoided: 30,
        };
        assert_eq!(
            a.merged(&b),
            IndexCounters {
                postings_probed: 11,
                cache_hits: 22,
                scans_avoided: 33,
            }
        );
    }

    #[test]
    fn report_aggregates() {
        use ev_core::region::CellId;
        use ev_core::time::Timestamp;
        let sid = |t| ScenarioId::new(Timestamp::new(t), CellId::new(0));
        let mut report = MatchReport::default();
        assert_eq!(report.scenarios_per_eid(), 0.0);
        assert_eq!(report.majority_rate(), 0.0);
        report.outcomes = vec![outcome(1, Some(1), 0.9), outcome(2, None, 0.0)];
        report.lists.insert(Eid::from_u64(1), vec![sid(0), sid(1)]);
        report.lists.insert(Eid::from_u64(2), vec![sid(1)]);
        report.selected_scenarios = [sid(0), sid(1)].into_iter().collect();
        assert_eq!(report.selected_count(), 2);
        assert!((report.scenarios_per_eid() - 1.5).abs() < 1e-12);
        assert!((report.majority_rate() - 0.5).abs() < 1e-12);
        assert!(report.outcome_of(Eid::from_u64(2)).unwrap().vid.is_none());
        assert!(report.outcome_of(Eid::from_u64(3)).is_none());
    }
}
