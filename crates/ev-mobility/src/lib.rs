//! Mobility substrate: synthetic human movement over the surveillance
//! region.
//!
//! The paper's evaluation distributes human objects across a
//! 1000 m × 1000 m region and drives them with the **random waypoint
//! model** (Camp et al., *A survey of mobility models for ad hoc network
//! research*, 2002), controlling "location, velocity and acceleration
//! change" (paper §VI-A). This crate implements that model plus a simple
//! random-walk alternative, a [`MobilityModel`] trait to add more, and a
//! [`World`] that steps a whole population tick by tick while recording
//! ground-truth trajectories.
//!
//! Every experiment rides on these trajectories: the density sweeps of
//! paper Figs. 6 and 9 and Table II vary how many simulated people
//! share a cell, and the `ablate-mobility` experiment swaps the model
//! (waypoint / walk / Manhattan) to show the paper's conclusions
//! survive street-constrained movement.
//!
//! # Example
//!
//! ```
//! use ev_mobility::{World, WaypointParams};
//! use ev_core::region::GridRegion;
//!
//! let region = GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap();
//! let mut world = World::random_waypoint(region, 50, WaypointParams::default(), 42);
//! let traces = world.run(100);
//! assert_eq!(traces.person_count(), 50);
//! assert_eq!(traces.duration(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manhattan;
mod trace;
mod walk;
mod waypoint;
mod world;

pub use manhattan::{ManhattanParams, ManhattanWalk};
pub use trace::{TraceSet, Trajectory};
pub use walk::{RandomWalk, WalkParams};
pub use waypoint::{RandomWaypoint, WaypointParams};
pub use world::World;

use ev_core::geometry::{Point, Rect};
use rand_chacha::ChaCha8Rng;

/// A mobility model drives one person's position forward one tick at a
/// time within a bounding rectangle.
///
/// Implementations must keep the returned position inside `bounds` at all
/// times; the [`World`] debug-asserts this.
pub trait MobilityModel {
    /// Current position.
    fn position(&self) -> Point;

    /// Advances the model by one tick (one simulated second) and returns
    /// the new position.
    fn step(&mut self, bounds: Rect, rng: &mut ChaCha8Rng) -> Point;
}
