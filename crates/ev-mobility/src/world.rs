//! The simulated world: a population of mobility models stepped in
//! lockstep over a gridded region.

use crate::trace::{TraceSet, Trajectory};
use crate::walk::{RandomWalk, WalkParams};
use crate::waypoint::{RandomWaypoint, WaypointParams};
use crate::MobilityModel;
use ev_core::ids::PersonId;
use ev_core::region::GridRegion;
use ev_core::time::Timestamp;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A population of persons moving through a [`GridRegion`].
///
/// The world owns one mobility model per person and a deterministic,
/// seedable RNG; two worlds built with the same parameters and seed
/// produce identical trajectories.
pub struct World {
    region: GridRegion,
    movers: Vec<Box<dyn MobilityModel + Send>>,
    rng: ChaCha8Rng,
    now: Timestamp,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("region", &self.region)
            .field("population", &self.movers.len())
            .field("now", &self.now)
            .finish()
    }
}

impl World {
    /// Creates a world of `population` persons all driven by the random
    /// waypoint model.
    #[must_use]
    pub fn random_waypoint(
        region: GridRegion,
        population: usize,
        params: WaypointParams,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bounds = region.bounds();
        let movers = (0..population)
            .map(|_| {
                Box::new(RandomWaypoint::new(params, bounds, &mut rng))
                    as Box<dyn MobilityModel + Send>
            })
            .collect();
        World {
            region,
            movers,
            rng,
            now: Timestamp::ZERO,
        }
    }

    /// Creates a world of `population` persons all driven by the random
    /// walk model.
    #[must_use]
    pub fn random_walk(
        region: GridRegion,
        population: usize,
        params: WalkParams,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bounds = region.bounds();
        let movers = (0..population)
            .map(|_| {
                Box::new(RandomWalk::new(params, bounds, &mut rng)) as Box<dyn MobilityModel + Send>
            })
            .collect();
        World {
            region,
            movers,
            rng,
            now: Timestamp::ZERO,
        }
    }

    /// Creates a world of `population` persons all driven by the
    /// Manhattan grid model.
    #[must_use]
    pub fn manhattan(
        region: GridRegion,
        population: usize,
        params: crate::ManhattanParams,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bounds = region.bounds();
        let movers = (0..population)
            .map(|_| {
                Box::new(crate::ManhattanWalk::new(params, bounds, &mut rng))
                    as Box<dyn MobilityModel + Send>
            })
            .collect();
        World {
            region,
            movers,
            rng,
            now: Timestamp::ZERO,
        }
    }

    /// Creates a world from externally constructed movers (mixing models).
    #[must_use]
    pub fn from_movers(
        region: GridRegion,
        movers: Vec<Box<dyn MobilityModel + Send>>,
        seed: u64,
    ) -> Self {
        World {
            region,
            movers,
            rng: ChaCha8Rng::seed_from_u64(seed),
            now: Timestamp::ZERO,
        }
    }

    /// The region this world simulates.
    #[must_use]
    pub fn region(&self) -> &GridRegion {
        &self.region
    }

    /// Number of persons.
    #[must_use]
    pub fn population(&self) -> usize {
        self.movers.len()
    }

    /// The current simulation instant.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances every person by one tick.
    pub fn step(&mut self) {
        let bounds = self.region.bounds();
        for mover in &mut self.movers {
            let p = mover.step(bounds, &mut self.rng);
            debug_assert!(bounds.contains(p), "mobility model escaped the region");
        }
        self.now = self.now + 1;
    }

    /// Runs the world for `ticks` ticks, recording every person's position
    /// at every tick (the position *after* each step).
    ///
    /// Persons are assigned ids `0..population` in mover order.
    pub fn run(&mut self, ticks: u64) -> TraceSet {
        let mut traces: Vec<Trajectory> = (0..self.movers.len())
            .map(|_| Trajectory::new(self.now))
            .collect();
        for _ in 0..ticks {
            self.step();
            for (mover, trace) in self.movers.iter().zip(traces.iter_mut()) {
                trace.push(mover.position());
            }
        }
        let mut set = TraceSet::new();
        for (i, trace) in traces.into_iter().enumerate() {
            set.insert(PersonId::new(i as u64), trace);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> GridRegion {
        GridRegion::new(1000.0, 1000.0, 100.0, 10.0).unwrap()
    }

    #[test]
    fn world_runs_and_records_everyone() {
        let mut w = World::random_waypoint(region(), 20, WaypointParams::default(), 1);
        let traces = w.run(50);
        assert_eq!(traces.person_count(), 20);
        assert_eq!(traces.duration(), 50);
        assert_eq!(w.now(), Timestamp::new(50));
        for (_, t) in traces.iter() {
            assert_eq!(t.len(), 50);
            for &p in &t.positions {
                assert!(region().bounds().contains(p));
            }
        }
    }

    #[test]
    fn same_seed_same_world() {
        let run =
            |seed| World::random_waypoint(region(), 10, WaypointParams::default(), seed).run(100);
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn random_walk_world() {
        let mut w = World::random_walk(region(), 5, WalkParams::default(), 9);
        let traces = w.run(30);
        assert_eq!(traces.person_count(), 5);
        // Walkers never pause, so each trajectory has positive length.
        for (_, t) in traces.iter() {
            assert!(t.path_length() > 0.0);
        }
    }

    #[test]
    fn consecutive_runs_continue_time() {
        let mut w = World::random_waypoint(region(), 3, WaypointParams::default(), 5);
        let first = w.run(10);
        let second = w.run(10);
        assert_eq!(first.get(PersonId::new(0)).unwrap().start, Timestamp::ZERO);
        assert_eq!(
            second.get(PersonId::new(0)).unwrap().start,
            Timestamp::new(10)
        );
    }

    #[test]
    fn manhattan_world_runs() {
        let mut w = World::manhattan(region(), 8, crate::ManhattanParams::default(), 4);
        let traces = w.run(40);
        assert_eq!(traces.person_count(), 8);
        for (_, t) in traces.iter() {
            for &p in &t.positions {
                assert!(region().bounds().contains(p));
            }
        }
    }

    #[test]
    fn mixed_model_world() {
        use crate::{RandomWalk, RandomWaypoint};
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let bounds = region().bounds();
        let movers: Vec<Box<dyn MobilityModel + Send>> = vec![
            Box::new(RandomWaypoint::new(
                WaypointParams::default(),
                bounds,
                &mut rng,
            )),
            Box::new(RandomWalk::new(WalkParams::default(), bounds, &mut rng)),
        ];
        let mut w = World::from_movers(region(), movers, 1);
        assert_eq!(w.population(), 2);
        let traces = w.run(20);
        assert_eq!(traces.person_count(), 2);
    }
}
