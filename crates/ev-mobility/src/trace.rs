//! Ground-truth trajectory recording.

use ev_core::geometry::Point;
use ev_core::ids::PersonId;
use ev_core::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The ground-truth trajectory of one person: their position at every tick
/// from `start` for `positions.len()` consecutive ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// First recorded tick.
    pub start: Timestamp,
    /// One position per tick, consecutive from `start`.
    pub positions: Vec<Point>,
}

impl Trajectory {
    /// Creates an empty trajectory starting at `start`.
    #[must_use]
    pub fn new(start: Timestamp) -> Self {
        Trajectory {
            start,
            positions: Vec::new(),
        }
    }

    /// Number of recorded ticks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position at tick `t`, if recorded.
    #[must_use]
    pub fn at(&self, t: Timestamp) -> Option<Point> {
        let offset = t - self.start; // saturating: earlier t gives 0
        if t < self.start {
            return None;
        }
        self.positions.get(offset as usize).copied()
    }

    /// Appends the next tick's position.
    pub fn push(&mut self, p: Point) {
        self.positions.push(p);
    }

    /// Total path length in metres.
    #[must_use]
    pub fn path_length(&self) -> f64 {
        self.positions.windows(2).map(|w| w[0].distance(w[1])).sum()
    }
}

/// The trajectories of a whole population over a common time span.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSet {
    traces: BTreeMap<PersonId, Trajectory>,
}

impl TraceSet {
    /// Creates an empty trace set.
    #[must_use]
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Inserts or replaces a person's trajectory.
    pub fn insert(&mut self, person: PersonId, trajectory: Trajectory) {
        self.traces.insert(person, trajectory);
    }

    /// The trajectory of `person`, if present.
    #[must_use]
    pub fn get(&self, person: PersonId) -> Option<&Trajectory> {
        self.traces.get(&person)
    }

    /// Number of persons with a trajectory.
    #[must_use]
    pub fn person_count(&self) -> usize {
        self.traces.len()
    }

    /// Duration in ticks (the longest trajectory's length).
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.traces
            .values()
            .map(|t| t.len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over `(person, trajectory)` pairs in person order.
    pub fn iter(&self) -> impl Iterator<Item = (PersonId, &Trajectory)> {
        self.traces.iter().map(|(&p, t)| (p, t))
    }

    /// The position of every person at tick `t` (persons without a sample
    /// at `t` are skipped).
    pub fn positions_at(&self, t: Timestamp) -> impl Iterator<Item = (PersonId, Point)> + '_ {
        self.traces
            .iter()
            .filter_map(move |(&p, tr)| tr.at(t).map(|pos| (p, pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_records_and_indexes() {
        let mut t = Trajectory::new(Timestamp::new(10));
        assert!(t.is_empty());
        t.push(Point::new(0.0, 0.0));
        t.push(Point::new(3.0, 4.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.at(Timestamp::new(10)), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.at(Timestamp::new(11)), Some(Point::new(3.0, 4.0)));
        assert_eq!(t.at(Timestamp::new(12)), None);
        assert_eq!(t.at(Timestamp::new(9)), None, "before start");
    }

    #[test]
    fn path_length_sums_segments() {
        let mut t = Trajectory::new(Timestamp::ZERO);
        t.push(Point::new(0.0, 0.0));
        t.push(Point::new(3.0, 4.0));
        t.push(Point::new(3.0, 10.0));
        assert!((t.path_length() - 11.0).abs() < 1e-12);
        assert_eq!(Trajectory::new(Timestamp::ZERO).path_length(), 0.0);
    }

    #[test]
    fn trace_set_accessors() {
        let mut s = TraceSet::new();
        let mut t = Trajectory::new(Timestamp::ZERO);
        t.push(Point::new(1.0, 1.0));
        s.insert(PersonId::new(3), t.clone());
        assert_eq!(s.person_count(), 1);
        assert_eq!(s.duration(), 1);
        assert_eq!(s.get(PersonId::new(3)), Some(&t));
        assert!(s.get(PersonId::new(4)).is_none());
        let at: Vec<_> = s.positions_at(Timestamp::ZERO).collect();
        assert_eq!(at, vec![(PersonId::new(3), Point::new(1.0, 1.0))]);
        assert_eq!(s.positions_at(Timestamp::new(5)).count(), 0);
    }

    #[test]
    fn empty_trace_set_duration_is_zero() {
        assert_eq!(TraceSet::new().duration(), 0);
        assert_eq!(TraceSet::new().person_count(), 0);
    }
}
