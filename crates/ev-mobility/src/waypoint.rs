//! The random waypoint mobility model (Camp et al., 2002).
//!
//! Each person repeatedly: picks a uniformly random destination in the
//! region, a target speed uniform in `[min_speed, max_speed]`, walks toward
//! the destination while smoothly accelerating toward the target speed,
//! and on arrival pauses for a uniformly random time in
//! `[0, max_pause]` ticks.

use crate::MobilityModel;
use ev_core::geometry::{Point, Rect, Vector};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the random waypoint model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointParams {
    /// Minimum target walking speed in m/s.
    pub min_speed: f64,
    /// Maximum target walking speed in m/s.
    pub max_speed: f64,
    /// Maximum pause at a reached waypoint, in ticks.
    pub max_pause: u64,
    /// Maximum change of speed per tick (acceleration bound), in m/s².
    pub max_accel: f64,
}

impl Default for WaypointParams {
    /// Pedestrian defaults: 0.5–2.0 m/s walking speed, up to 30 s pauses,
    /// 0.5 m/s² acceleration.
    fn default() -> Self {
        WaypointParams {
            min_speed: 0.5,
            max_speed: 2.0,
            max_pause: 30,
            max_accel: 0.5,
        }
    }
}

impl WaypointParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] when speeds are
    /// non-positive, inverted, or the acceleration bound is non-positive.
    pub fn validate(&self) -> ev_core::Result<()> {
        if !self.min_speed.is_finite() || self.min_speed <= 0.0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "min_speed",
                reason: format!("must be positive, got {}", self.min_speed),
            });
        }
        if !self.max_speed.is_finite() || self.max_speed < self.min_speed {
            return Err(ev_core::Error::InvalidParameter {
                name: "max_speed",
                reason: format!(
                    "must be at least min_speed ({}), got {}",
                    self.min_speed, self.max_speed
                ),
            });
        }
        if !self.max_accel.is_finite() || self.max_accel <= 0.0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "max_accel",
                reason: format!("must be positive, got {}", self.max_accel),
            });
        }
        Ok(())
    }
}

/// Movement phase of a waypoint walker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Phase {
    /// Walking toward `target` at up to `target_speed`.
    Walking {
        /// Destination waypoint.
        target: Point,
        /// Speed to accelerate toward, m/s.
        target_speed: f64,
    },
    /// Paused at a waypoint for the remaining number of ticks.
    Paused {
        /// Ticks of pause remaining.
        remaining: u64,
    },
}

/// One person moving under the random waypoint model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    params: WaypointParams,
    position: Point,
    speed: f64,
    phase: Phase,
}

impl RandomWaypoint {
    /// Creates a walker at a uniformly random position inside `bounds`,
    /// initially paused for a random fraction of `max_pause` so a
    /// population does not start in lockstep.
    pub fn new(params: WaypointParams, bounds: Rect, rng: &mut ChaCha8Rng) -> Self {
        let position = random_point(bounds, rng);
        let remaining = if params.max_pause == 0 {
            0
        } else {
            rng.gen_range(0..=params.max_pause)
        };
        RandomWaypoint {
            params,
            position,
            speed: 0.0,
            phase: Phase::Paused { remaining },
        }
    }

    /// The walker's current scalar speed in m/s.
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The parameters this walker was created with.
    #[must_use]
    pub fn params(&self) -> &WaypointParams {
        &self.params
    }

    fn pick_new_leg(&mut self, bounds: Rect, rng: &mut ChaCha8Rng) {
        let target = random_point(bounds, rng);
        let target_speed = rng.gen_range(self.params.min_speed..=self.params.max_speed);
        self.phase = Phase::Walking {
            target,
            target_speed,
        };
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&self) -> Point {
        self.position
    }

    fn step(&mut self, bounds: Rect, rng: &mut ChaCha8Rng) -> Point {
        match self.phase {
            Phase::Paused { remaining } => {
                self.speed = 0.0;
                if remaining == 0 {
                    self.pick_new_leg(bounds, rng);
                } else {
                    self.phase = Phase::Paused {
                        remaining: remaining - 1,
                    };
                }
            }
            Phase::Walking {
                target,
                target_speed,
            } => {
                // Accelerate (or decelerate) toward the leg's target speed,
                // bounded by max_accel per tick.
                let dv = (target_speed - self.speed)
                    .clamp(-self.params.max_accel, self.params.max_accel);
                self.speed = (self.speed + dv).max(0.0);
                let to_target = target - self.position;
                let dist = to_target.norm();
                if dist <= self.speed {
                    // Arrive this tick and pause.
                    self.position = target;
                    self.speed = 0.0;
                    let pause = if self.params.max_pause == 0 {
                        0
                    } else {
                        rng.gen_range(0..=self.params.max_pause)
                    };
                    self.phase = Phase::Paused { remaining: pause };
                } else {
                    let dir: Vector = to_target.normalized();
                    self.position = (self.position + dir * self.speed).clamped(bounds);
                }
            }
        }
        self.position
    }
}

/// Uniformly random point inside `bounds`.
pub(crate) fn random_point(bounds: Rect, rng: &mut ChaCha8Rng) -> Point {
    Point::new(
        rng.gen_range(bounds.min.x..=bounds.max.x),
        rng.gen_range(bounds.min.y..=bounds.max.y),
    )
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field mutation reads clearer in validation tests
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn bounds() -> Rect {
        Rect::from_size(1000.0, 1000.0)
    }

    #[test]
    fn default_params_are_valid() {
        WaypointParams::default().validate().unwrap();
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = WaypointParams::default();
        p.min_speed = 0.0;
        assert!(p.validate().is_err());
        let mut p = WaypointParams::default();
        p.max_speed = 0.1; // below min_speed
        assert!(p.validate().is_err());
        let mut p = WaypointParams::default();
        p.max_accel = -1.0;
        assert!(p.validate().is_err());
        let mut p = WaypointParams::default();
        p.max_speed = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn walker_stays_in_bounds() {
        let mut r = rng(1);
        let mut w = RandomWaypoint::new(WaypointParams::default(), bounds(), &mut r);
        for _ in 0..5_000 {
            let p = w.step(bounds(), &mut r);
            assert!(bounds().contains(p), "escaped at {p}");
        }
    }

    #[test]
    fn speed_respects_limits_and_acceleration() {
        let mut r = rng(2);
        let params = WaypointParams::default();
        let mut w = RandomWaypoint::new(params, bounds(), &mut r);
        let mut prev_speed = w.speed();
        for _ in 0..5_000 {
            w.step(bounds(), &mut r);
            let s = w.speed();
            assert!(s <= params.max_speed + 1e-9, "over speed: {s}");
            assert!(s >= 0.0);
            // Acceleration bound holds except at arrivals (instant stop).
            if s > 0.0 && prev_speed > 0.0 {
                assert!(
                    (s - prev_speed).abs() <= params.max_accel + 1e-9,
                    "accel jump {prev_speed} -> {s}"
                );
            }
            prev_speed = s;
        }
    }

    #[test]
    fn walker_eventually_moves() {
        let mut r = rng(3);
        let mut w = RandomWaypoint::new(WaypointParams::default(), bounds(), &mut r);
        let start = w.position();
        let mut moved = false;
        for _ in 0..200 {
            if w.step(bounds(), &mut r).distance(start) > 1.0 {
                moved = true;
                break;
            }
        }
        assert!(moved, "walker never left its start position");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed| {
            let mut r = rng(seed);
            let mut w = RandomWaypoint::new(WaypointParams::default(), bounds(), &mut r);
            (0..100)
                .map(|_| w.step(bounds(), &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
    }

    #[test]
    fn zero_pause_keeps_walking() {
        let mut r = rng(4);
        let params = WaypointParams {
            max_pause: 0,
            ..WaypointParams::default()
        };
        let mut w = RandomWaypoint::new(params, bounds(), &mut r);
        // With no pauses the walker should move in nearly every tick once
        // warmed up.
        let mut still = 0;
        let mut prev = w.position();
        for _ in 0..1_000 {
            let p = w.step(bounds(), &mut r);
            if p.distance(prev) < 1e-12 {
                still += 1;
            }
            prev = p;
        }
        // Allow the accelerate-from-zero ticks at each arrival.
        assert!(still < 100, "walker idle for {still}/1000 ticks");
    }
}
