//! A bounded random-walk mobility model, used as an ablation alternative
//! to the random waypoint model.

use crate::MobilityModel;
use ev_core::geometry::{Point, Rect, Vector};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the random walk model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WalkParams {
    /// Constant walking speed in m/s.
    pub speed: f64,
    /// Ticks between direction changes.
    pub direction_hold: u64,
}

impl Default for WalkParams {
    fn default() -> Self {
        WalkParams {
            speed: 1.2,
            direction_hold: 20,
        }
    }
}

/// One person moving as a random walk: a uniformly random heading held for
/// `direction_hold` ticks, reflecting off the region borders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWalk {
    params: WalkParams,
    position: Point,
    heading: Vector,
    until_turn: u64,
}

impl RandomWalk {
    /// Creates a walker at a uniformly random position with a random
    /// heading.
    pub fn new(params: WalkParams, bounds: Rect, rng: &mut ChaCha8Rng) -> Self {
        let position = crate::waypoint::random_point(bounds, rng);
        RandomWalk {
            params,
            position,
            heading: random_heading(rng),
            until_turn: params.direction_hold,
        }
    }
}

fn random_heading(rng: &mut ChaCha8Rng) -> Vector {
    let theta = rng.gen_range(0.0..std::f64::consts::TAU);
    Vector::new(theta.cos(), theta.sin())
}

impl MobilityModel for RandomWalk {
    fn position(&self) -> Point {
        self.position
    }

    fn step(&mut self, bounds: Rect, rng: &mut ChaCha8Rng) -> Point {
        if self.until_turn == 0 {
            self.heading = random_heading(rng);
            self.until_turn = self.params.direction_hold;
        } else {
            self.until_turn -= 1;
        }
        let mut next = self.position + self.heading * self.params.speed;
        // Reflect off the borders.
        if next.x < bounds.min.x || next.x > bounds.max.x {
            self.heading.dx = -self.heading.dx;
            next.x = next.x.clamp(bounds.min.x, bounds.max.x);
        }
        if next.y < bounds.min.y || next.y > bounds.max.y {
            self.heading.dy = -self.heading.dy;
            next.y = next.y.clamp(bounds.min.y, bounds.max.y);
        }
        self.position = next;
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bounds() -> Rect {
        Rect::from_size(100.0, 100.0)
    }

    #[test]
    fn walk_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut w = RandomWalk::new(WalkParams::default(), bounds(), &mut rng);
        for _ in 0..10_000 {
            let p = w.step(bounds(), &mut rng);
            assert!(bounds().contains(p));
        }
    }

    #[test]
    fn walk_moves_every_tick() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut w = RandomWalk::new(WalkParams::default(), bounds(), &mut rng);
        let mut prev = w.position();
        for _ in 0..100 {
            let p = w.step(bounds(), &mut rng);
            assert!(p.distance(prev) > 0.0, "random walk never pauses");
            prev = p;
        }
    }

    #[test]
    fn walk_changes_direction() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let params = WalkParams {
            speed: 1.0,
            direction_hold: 5,
        };
        let mut w = RandomWalk::new(params, bounds(), &mut rng);
        let h0 = w.heading;
        for _ in 0..50 {
            w.step(bounds(), &mut rng);
        }
        assert_ne!(w.heading, h0);
    }

    #[test]
    fn reflection_reverses_component() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let params = WalkParams {
            speed: 10.0,
            direction_hold: u64::MAX, // never voluntarily turn
        };
        let mut w = RandomWalk::new(params, bounds(), &mut rng);
        // Force the walker toward the right wall.
        w.position = Point::new(95.0, 50.0);
        w.heading = Vector::new(1.0, 0.0);
        w.step(bounds(), &mut rng);
        assert!(w.heading.dx < 0.0, "heading must reflect off the wall");
    }
}
