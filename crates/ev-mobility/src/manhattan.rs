//! The Manhattan grid mobility model (Camp et al., 2002 §2.6): movement
//! constrained to a lattice of horizontal and vertical streets, turning
//! only at intersections — a better approximation of urban pedestrians
//! than free-space waypoints, and the standard robustness check for
//! mobility-dependent results.

use crate::MobilityModel;
use ev_core::geometry::{Point, Rect};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Manhattan grid model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManhattanParams {
    /// Street spacing (block side) in metres.
    pub block: f64,
    /// Walking speed in m/s.
    pub speed: f64,
    /// Probability of turning (left or right) at an intersection.
    pub turn_probability: f64,
}

impl Default for ManhattanParams {
    /// 50 m blocks, 1.3 m/s walking speed, 40 % turns.
    fn default() -> Self {
        ManhattanParams {
            block: 50.0,
            speed: 1.3,
            turn_probability: 0.4,
        }
    }
}

impl ManhattanParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ev_core::Error::InvalidParameter`] on a non-positive
    /// block or speed, or a turn probability outside `[0, 1]`.
    pub fn validate(&self) -> ev_core::Result<()> {
        if !self.block.is_finite() || self.block <= 0.0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "block",
                reason: format!("must be positive, got {}", self.block),
            });
        }
        if !self.speed.is_finite() || self.speed <= 0.0 {
            return Err(ev_core::Error::InvalidParameter {
                name: "speed",
                reason: format!("must be positive, got {}", self.speed),
            });
        }
        if !self.turn_probability.is_finite() || !(0.0..=1.0).contains(&self.turn_probability) {
            return Err(ev_core::Error::InvalidParameter {
                name: "turn_probability",
                reason: format!("must be in [0, 1], got {}", self.turn_probability),
            });
        }
        Ok(())
    }
}

/// Direction of travel along the street grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Heading {
    East,
    West,
    North,
    South,
}

impl Heading {
    fn delta(self) -> (f64, f64) {
        match self {
            Heading::East => (1.0, 0.0),
            Heading::West => (-1.0, 0.0),
            Heading::North => (0.0, 1.0),
            Heading::South => (0.0, -1.0),
        }
    }

    fn turns(self) -> [Heading; 2] {
        match self {
            Heading::East | Heading::West => [Heading::North, Heading::South],
            Heading::North | Heading::South => [Heading::East, Heading::West],
        }
    }

    fn reverse(self) -> Heading {
        match self {
            Heading::East => Heading::West,
            Heading::West => Heading::East,
            Heading::North => Heading::South,
            Heading::South => Heading::North,
        }
    }
}

/// One pedestrian on the street grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManhattanWalk {
    params: ManhattanParams,
    position: Point,
    heading: Heading,
}

impl ManhattanWalk {
    /// Creates a walker snapped to a random intersection with a random
    /// heading.
    pub fn new(params: ManhattanParams, bounds: Rect, rng: &mut ChaCha8Rng) -> Self {
        let cols = (bounds.width() / params.block).floor().max(1.0) as u64;
        let rows = (bounds.height() / params.block).floor().max(1.0) as u64;
        let x = bounds.min.x + rng.gen_range(0..=cols) as f64 * params.block;
        let y = bounds.min.y + rng.gen_range(0..=rows) as f64 * params.block;
        let heading = match rng.gen_range(0..4) {
            0 => Heading::East,
            1 => Heading::West,
            2 => Heading::North,
            _ => Heading::South,
        };
        ManhattanWalk {
            params,
            position: Point::new(x, y).clamped(bounds),
            heading,
        }
    }

    /// Whether the walker currently stands (approximately) on an
    /// intersection of the street grid.
    fn at_intersection(&self, bounds: Rect) -> bool {
        let eps = self.params.speed; // within one step of the crossing
        let dx = (self.position.x - bounds.min.x) % self.params.block;
        let dy = (self.position.y - bounds.min.y) % self.params.block;
        let near = |v: f64| v < eps || (self.params.block - v) < eps;
        near(dx) && near(dy)
    }
}

impl MobilityModel for ManhattanWalk {
    fn position(&self) -> Point {
        self.position
    }

    fn step(&mut self, bounds: Rect, rng: &mut ChaCha8Rng) -> Point {
        if self.at_intersection(bounds) && rng.gen::<f64>() < self.params.turn_probability {
            let options = self.heading.turns();
            self.heading = options[usize::from(rng.gen::<bool>())];
        }
        let (dx, dy) = self.heading.delta();
        let next = Point::new(
            self.position.x + dx * self.params.speed,
            self.position.y + dy * self.params.speed,
        );
        if bounds.contains(next) {
            self.position = next;
        } else {
            // Dead end at the region border: turn around.
            self.heading = self.heading.reverse();
        }
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bounds() -> Rect {
        Rect::from_size(200.0, 200.0)
    }

    #[test]
    fn params_validate() {
        ManhattanParams::default().validate().unwrap();
        assert!(ManhattanParams {
            block: 0.0,
            ..ManhattanParams::default()
        }
        .validate()
        .is_err());
        assert!(ManhattanParams {
            speed: -1.0,
            ..ManhattanParams::default()
        }
        .validate()
        .is_err());
        assert!(ManhattanParams {
            turn_probability: 1.5,
            ..ManhattanParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn walker_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut w = ManhattanWalk::new(ManhattanParams::default(), bounds(), &mut rng);
        for _ in 0..5_000 {
            let p = w.step(bounds(), &mut rng);
            assert!(bounds().contains(p));
        }
    }

    #[test]
    fn walker_stays_on_streets() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let params = ManhattanParams {
            block: 50.0,
            speed: 1.0,
            turn_probability: 0.5,
        };
        let mut w = ManhattanWalk::new(params, bounds(), &mut rng);
        for _ in 0..2_000 {
            let p = w.step(bounds(), &mut rng);
            // At least one coordinate lies on a street line (multiple of
            // the block size), up to numeric slack.
            let on = |v: f64| {
                let r = v % params.block;
                r < 1e-6 || (params.block - r) < 1e-6
            };
            assert!(on(p.x) || on(p.y), "walker left the street grid at {p}");
        }
    }

    #[test]
    fn walker_turns_eventually() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut w = ManhattanWalk::new(ManhattanParams::default(), bounds(), &mut rng);
        let initial = w.heading;
        let mut turned = false;
        for _ in 0..2_000 {
            w.step(bounds(), &mut rng);
            if w.heading != initial {
                turned = true;
                break;
            }
        }
        assert!(turned, "walker never changed heading");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut w = ManhattanWalk::new(ManhattanParams::default(), bounds(), &mut rng);
            (0..200)
                .map(|_| w.step(bounds(), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
