//! Offline vendored stand-in for `bytes`: an immutable, cheaply
//! cloneable byte buffer over `Arc<[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte string without copying semantics concerns.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A new buffer holding the given subrange.
    ///
    /// Unlike upstream `bytes` this copies; callers here only slice
    /// small block-sized chunks.
    #[must_use]
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes {
            data: self.data[start..end].into(),
        }
    }

    /// A copy of the bytes as a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// The bytes as a slice.
    #[must_use]
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes {
            data: v.as_slice().into(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                other => write!(f, "\\x{other:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(vec![97, 98, 99]));
        assert_eq!(&Bytes::from("xy")[..], b"xy");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }
}
