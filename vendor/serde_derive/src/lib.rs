//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! serde stand-in.
//!
//! The build environment has no crate registry, so this macro parses the
//! item's token stream by hand (no `syn`/`quote`) and emits Value-centric
//! impls. Supported shapes — the ones this workspace derives:
//!
//! - named-field structs (serialized as objects),
//! - tuple structs (1 field → the inner value, n fields → an array),
//! - `#[serde(transparent)]` single-field structs,
//! - externally-tagged enums with unit (`"Name"`), tuple
//!   (`{"Name": value}` / `{"Name": [..]}`) and struct
//!   (`{"Name": {..}}`) variants.
//!
//! Generic types are intentionally unsupported and fail loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading `#[...]` attributes from `tokens[*pos..]`, returning
/// whether any was `#[serde(transparent)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut transparent = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            if g.delimiter() == Delimiter::Bracket {
                if attr_is_serde_transparent(&g.stream()) {
                    transparent = true;
                }
                *pos += 2;
                continue;
            }
        }
        break;
    }
    transparent
}

fn attr_is_serde_transparent(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Consumes a `pub` / `pub(...)` visibility marker if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let transparent = skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(&tokens, pos, &name)),
        "enum" => Kind::Enum(parse_enum_body(&tokens, pos, &name)),
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        transparent,
        kind,
    }
}

fn parse_struct_body(tokens: &[TokenTree], pos: usize, name: &str) -> Shape {
    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(&g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(&g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, tracking `<...>` depth so commas
/// inside generic arguments do not split fields.
fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let Some(TokenTree::Ident(field)) = tokens.get(pos) else {
            panic!(
                "serde derive: expected field name, got {:?}",
                tokens.get(pos)
            );
        };
        fields.push(field.to_string());
        pos += 1;
        assert!(
            matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde derive: expected `:` after field `{}`",
            fields.last().expect("just pushed"),
        );
        pos += 1;
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(pos) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        pos += 1; // past the comma (or the end)
    }
    fields
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        saw_trailing_comma = false;
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], pos: usize, name: &str) -> Vec<Variant> {
    let Some(TokenTree::Group(body)) = tokens.get(pos) else {
        panic!("serde derive: expected enum body for `{name}`");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "serde derive: expected braced enum body for `{name}`",
    );
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let Some(TokenTree::Ident(vname)) = tokens.get(pos) else {
            panic!(
                "serde derive: expected variant name, got {:?}",
                tokens.get(pos)
            );
        };
        let vname = vname.to_string();
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(&g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name: vname, shape });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn is_newtype(item: &Item) -> bool {
    match &item.kind {
        Kind::Struct(Shape::Tuple(1)) => true,
        Kind::Struct(Shape::Named(fields)) => item.transparent && fields.len() == 1,
        _ => false,
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Named(fields)) if is_newtype(item) => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Obj(vec![(\"{vname}\"\
                             .to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![(\"{vname}\"\
                                 .to_string(), ::serde::Value::Arr(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Obj(vec![(\"{vname}\".to_string(), \
                                 ::serde::Value::Obj(vec![{}]))])",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_reads(target: &str, source: &str, fields: &[String]) -> String {
    let reads: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {source}.get(\"{f}\") {{ \
                 Some(x) => ::serde::Deserialize::from_value(x)?, \
                 None => return Err(::serde::Error::missing_field(\"{f}\")) }}"
            )
        })
        .collect();
    format!("{target} {{ {} }}", reads.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Shape::Named(fields)) if is_newtype(item) => {
            format!(
                "Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
                fields[0]
            )
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_arr().ok_or_else(|| \
                 ::serde::Error::wrong_type(\"array\", v))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::custom(\
                 format!(\"expected {n} elements, got {{}}\", items.len()))); }}\n\
                 Ok({name}({}))",
                reads.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            format!(
                "if v.as_obj().is_none() {{ \
                 return Err(::serde::Error::wrong_type(\"object\", v)); }}\n\
                 Ok({})",
                gen_named_reads(name, "v", fields)
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vname}\" => return \
                             Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let reads: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                 let items = inner.as_arr().ok_or_else(|| \
                                 ::serde::Error::wrong_type(\"array\", inner))?; \
                                 if items.len() != {n} {{ \
                                 return Err(::serde::Error::custom(\"wrong arity\")); }} \
                                 return Ok({name}::{vname}({})); }}",
                                reads.join(", ")
                            ))
                        }
                        Shape::Named(fields) => Some(format!(
                            "\"{vname}\" => return Ok({}),",
                            gen_named_reads(&format!("{name}::{vname}"), "inner", fields)
                        )),
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(tag) = v {{\n\
                 match tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 if let Some(fields) = v.as_obj() {{\n\
                 if fields.len() == 1 {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 }}\n\
                 Err(::serde::Error::custom(format!(\
                 \"unknown variant for {name}: {{}}\", v)))",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
}
