//! Offline vendored JSON front end: `to_string`, `to_string_pretty`,
//! `from_str` and the `json!` macro over the vendored serde stand-in.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    inner: serde::Error,
}

impl From<serde::Error> for Error {
    fn from(inner: serde::Error) -> Self {
        Error { inner }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails for the shapes this workspace serializes; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serializes a value as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the shapes this workspace serializes; the `Result`
/// mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::value::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] in place, mirroring `serde_json::json!` for the
/// forms this workspace uses: object literals with expression values,
/// array literals, `null` and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Obj(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_via_text() {
        let mut m: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        m.insert("xs".into(), vec![1, 2, 3]);
        let text = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_macro_shapes() {
        let count = 3u64;
        let v = json!({
            "count": count,
            "items": (0..count).collect::<Vec<_>>(),
            "nested": json!([1, 2]),
            "missing": Option::<u64>::None,
        });
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            r#"{"count":3,"items":[0,1,2],"nested":[1,2],"missing":null}"#
        );
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn from_str_reports_errors() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("\"seven\"").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": 1});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
