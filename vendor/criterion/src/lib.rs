//! Offline vendored micro-benchmark harness exposing the criterion API
//! subset this workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `sample_size`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples
//! of an adaptively-chosen iteration batch, and reports the median
//! per-iteration time on stdout. Results are also collected in-process
//! (see [`Criterion::take_results`]) so custom bench mains can export
//! them.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label.
    pub id: String,
    /// Median time per iteration.
    pub per_iter: Duration,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Passed into benchmark closures; runs and times the workload.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, running it enough times for a stable median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least ~2ms (or a growth cap is hit) so cheap routines are
        // measured over many iterations.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        let mut iterations = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX));
            iterations += batch;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        *self.result = Some((median, iterations));
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 10;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R>(&mut self, name: &str, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher<'_>),
    {
        let samples = self.sample_size.unwrap_or(DEFAULT_SAMPLES);
        let result = run_one(name, samples, routine);
        self.results.push(result);
        self
    }

    /// Drains every result measured so far (for custom bench mains that
    /// export measurements).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

fn run_one<R>(id: &str, samples: usize, mut routine: R) -> BenchResult
where
    R: FnMut(&mut Bencher<'_>),
{
    let mut measured: Option<(Duration, u64)> = None;
    let mut bencher = Bencher {
        samples,
        result: &mut measured,
    };
    routine(&mut bencher);
    let (per_iter, iterations) = measured.unwrap_or((Duration::ZERO, 0));
    println!("bench {id:<50} {per_iter:>12.2?}/iter ({iterations} iterations)");
    BenchResult {
        id: id.to_string(),
        per_iter,
        iterations,
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(DEFAULT_SAMPLES);
        let result = run_one(&label, samples, routine);
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        I: ?Sized,
        R: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop-sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].iterations > 0);
    }

    #[test]
    fn groups_label_results() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        let results = c.take_results();
        assert_eq!(results[0].id, "g/7");
    }
}
