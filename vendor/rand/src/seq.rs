//! Sequence helpers: the `SliceRandom` subset the workspace uses.

use crate::{Rng, RngCore};

/// Shuffling and random selection over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, matching upstream's
    /// high-to-low index walk).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut Counter(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50 elements moved");
    }

    #[test]
    fn choose_returns_member() {
        let v = [10, 20, 30];
        let mut rng = Counter(2);
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
