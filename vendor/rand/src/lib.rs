//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crate registry, so
//! the workspace vendors the *API subset it actually uses*: `RngCore`,
//! `Rng` (with `gen`, `gen_range`, `gen_bool`), `SeedableRng` and
//! `seq::SliceRandom`. Output streams are deterministic per seed, which is
//! all the workspace relies on — no test pins upstream `rand` values.

pub mod seq;

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire's widening-multiply method
/// with rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // # of biased low results
    loop {
        let x = rng.next_u64();
        let m = (u128::from(x)) * (u128::from(bound));
        let low = m as u64;
        if low >= zone || zone == 0 {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed, expanded with SplitMix64 (the
    /// same construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform enough for range tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..200 {
            let v: u64 = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..200 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
