//! Deterministic case RNG and failure type for the vendored shim.

use std::fmt;

/// A SplitMix64 generator seeded per (test name, case index), so every
/// run of the suite sees the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named property.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= zone || zone == 0 {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}
