//! Sampling helpers: the `Index` type for picking slice elements.

/// A position-independent index: a unit draw scaled by whatever slice
/// length it is applied to.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    unit: f64,
}

impl Index {
    pub(crate) fn new(unit: f64) -> Self {
        Index { unit }
    }

    /// The concrete index for a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero, like upstream.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        ((self.unit * len as f64) as usize).min(len - 1)
    }

    /// A reference to the picked element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is empty, like upstream.
    #[must_use]
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }
}
