//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::{SizeRange, Strategy};
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// Strategy for `Vec<S::Value>` with a size drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from a range.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Sets of `size` elements drawn from `element`. Like upstream, the set
/// may come out smaller than the drawn size when the element domain is
/// too small to fill it with distinct values.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Bounded attempts: small domains cannot always reach `target`.
        for _ in 0..target.saturating_mul(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}
