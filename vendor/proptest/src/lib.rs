//! Offline vendored property-testing shim.
//!
//! The build environment has no crate registry, so the workspace vendors
//! the proptest API subset it uses: the `proptest!` macro, `prop_assert!`
//! / `prop_assert_eq!`, range/tuple strategies, `collection::vec`,
//! `collection::btree_set`, `any::<T>()` and `sample::Index`. Cases are
//! generated deterministically per (test name, case index); there is no
//! shrinking — a failure reports the offending inputs instead.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Types with a canonical strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut test_runner::TestRng) -> sample::Index {
        sample::Index::new(rng.unit_f64())
    }
}

/// Strategy producing arbitrary values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig};

    /// Namespace mirror of upstream's `prop::...` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident
            ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut runner_rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&$strat, &mut runner_rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {case}: {e}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in prop::collection::vec((0u64..5, 0.0f64..1.0), 0..10),
        ) {
            prop_assert!(pairs.len() < 10);
            for (a, b) in &pairs {
                prop_assert!(*a < 5 && (0.0..1.0).contains(b));
            }
        }

        #[test]
        fn btree_sets_respect_bounds(s in prop::collection::btree_set(0u64..12, 0..8)) {
            prop_assert!(s.len() < 8);
            for v in &s {
                prop_assert!(*v < 12);
            }
        }

        #[test]
        fn index_picks_valid_element(
            items in prop::collection::vec(0u64..100, 1..20),
            pick in any::<prop::sample::Index>(),
        ) {
            let chosen = pick.get(&items);
            prop_assert!(items.contains(chosen));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_override_applies(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
