//! The `Strategy` trait and the range/tuple strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// A size constraint for collection strategies: `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub lo: usize,
    /// One past the largest allowed size.
    pub hi: usize,
}

impl SizeRange {
    pub(crate) fn sample(self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}
