//! Offline vendored stand-in for `parking_lot`: `Mutex` and `RwLock`
//! with parking_lot's poison-free guard-returning API, wrapping the std
//! primitives. A poisoned std lock (panicking holder) is recovered, like
//! parking_lot, which has no poisoning at all.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
