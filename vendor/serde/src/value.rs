//! A self-describing JSON-like value: the interchange format of the
//! vendored serde stand-in.

use std::fmt;

/// A JSON document tree. Integers keep full `i128` precision (so `u64`
/// ids survive a round trip exactly); objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral JSON number.
    Int(i128),
    /// Floating-point JSON number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup for objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// One-word description of the value's type, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Compact JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty JSON rendering (2-space indent, like `serde_json`).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Parses a JSON document. The whole input must be one value (plus
/// whitespace).
pub fn parse(input: &str) -> Result<Value, crate::Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(crate::Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> crate::Error {
        crate::Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), crate::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, crate::Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, crate::Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character '{}'", other as char))),
        }
    }

    fn array(&mut self) -> Result<Value, crate::Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid; find the full char starting one byte back.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty char"))?;
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, crate::Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, crate::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Renders a map key. String keys pass through; anything else uses its
/// compact JSON form (so integral keys print as plain decimals).
#[must_use]
pub fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_json(),
    }
}

/// Reconstructs the value a map key most plausibly serialized from:
/// integral text becomes `Int`, valid JSON parses through, anything else
/// stays a string. Symmetric with [`key_to_string`] for the key types the
/// workspace uses (integers, id newtypes and strings).
#[must_use]
pub fn key_from_string(raw: &str) -> Value {
    if let Ok(i) = raw.parse::<i128>() {
        return Value::Int(i);
    }
    parse(raw).unwrap_or_else(|_| Value::Str(raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Int(-7)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Float(0.25)),
            ("d".into(), Value::Str("x \"y\"\nz".into())),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn u64_precision_survives() {
        let v = Value::Int(i128::from(u64::MAX));
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn keys_roundtrip() {
        assert_eq!(
            key_from_string(&key_to_string(&Value::Int(42))),
            Value::Int(42)
        );
        assert_eq!(
            key_from_string(&key_to_string(&Value::Str("hi".into()))),
            Value::Str("hi".into())
        );
    }
}
