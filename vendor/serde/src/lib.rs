//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crate registry, so the workspace vendors
//! a Value-centric serde subset: [`Serialize`] renders any value into a
//! JSON-like [`Value`] tree, [`Deserialize`] reads one back. The
//! `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) cover the shapes this workspace uses: named
//! structs, `#[serde(transparent)]` newtypes, tuple structs and
//! externally-tagged enums with unit/tuple/struct variants.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any printable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// The canonical "missing field" error.
    #[must_use]
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// The canonical "wrong type" error.
    #[must_use]
    pub fn wrong_type(expected: &str, got: &Value) -> Self {
        Error::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a self-describing value.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!("{} out of range for {}", i, stringify!($t)))
                    }),
                    other => Err(Error::wrong_type("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN), // serde_json writes NaN as null
                    other => Err(Error::wrong_type("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::wrong_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::wrong_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::wrong_type("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_arr().ok_or_else(|| Error::wrong_type("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_arr().ok_or_else(|| Error::wrong_type("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (value::key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_obj().ok_or_else(|| Error::wrong_type("object", v))?;
        fields
            .iter()
            .map(|(raw, val)| {
                // Try the raw string first (covers string keys), then the
                // reconstructed key value (covers integral/id keys).
                let key = K::from_value(&Value::Str(raw.clone()))
                    .or_else(|_| K::from_value(&value::key_from_string(raw)))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr().ok_or_else(|| Error::wrong_type("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("secs".to_string(), Value::Int(i128::from(self.as_secs()))),
            (
                "nanos".to_string(),
                Value::Int(i128::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = v
            .get("secs")
            .ok_or_else(|| Error::missing_field("secs"))
            .and_then(u64::from_value)?;
        let nanos = v
            .get("nanos")
            .ok_or_else(|| Error::missing_field("nanos"))
            .and_then(u32::from_value)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collections_roundtrip() {
        let mut map: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        map.insert(3, vec!["a".into(), "b".into()]);
        map.insert(u64::MAX, vec![]);
        let v = map.to_value();
        assert_eq!(BTreeMap::from_value(&v).ok(), Some(map));

        let set: BTreeSet<i32> = [-2, 0, 9].into_iter().collect();
        assert_eq!(BTreeSet::from_value(&set.to_value()).ok(), Some(set));
    }

    #[test]
    fn option_and_tuple_roundtrip() {
        let x: Option<(u8, f64)> = Some((4, 0.5));
        assert_eq!(Option::from_value(&x.to_value()).ok(), Some(x));
        let y: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&y.to_value()).ok(), Some(None));
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(7, 123_456_789);
        assert_eq!(Duration::from_value(&d.to_value()).ok(), Some(d));
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u64::from_value(&Value::Str("7".into())).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(Vec::<u8>::from_value(&Value::Int(1)).is_err());
    }
}
