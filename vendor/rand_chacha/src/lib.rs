//! Offline vendored ChaCha8 random number generator.
//!
//! A real ChaCha8 core (IETF layout: 32-byte key, 64-bit block counter)
//! implementing the vendored [`rand`] traits. Streams are deterministic
//! per seed, which is the property every consumer in this workspace
//! relies on.

use rand::{RngCore, SeedableRng};

/// The ChaCha block function with 8 rounds.
fn chacha8_block(key: &[u32; 8], counter: u64, out: &mut [u32; 16]) {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;

    let mut x = state;
    macro_rules! quarter {
        ($a:expr, $b:expr, $c:expr, $d:expr) => {
            x[$a] = x[$a].wrapping_add(x[$b]);
            x[$d] = (x[$d] ^ x[$a]).rotate_left(16);
            x[$c] = x[$c].wrapping_add(x[$d]);
            x[$b] = (x[$b] ^ x[$c]).rotate_left(12);
            x[$a] = x[$a].wrapping_add(x[$b]);
            x[$d] = (x[$d] ^ x[$a]).rotate_left(8);
            x[$c] = x[$c].wrapping_add(x[$d]);
            x[$b] = (x[$b] ^ x[$c]).rotate_left(7);
        };
    }
    for _ in 0..4 {
        // 8 rounds = 4 double-rounds.
        quarter!(0, 4, 8, 12);
        quarter!(1, 5, 9, 13);
        quarter!(2, 6, 10, 14);
        quarter!(3, 7, 11, 15);
        quarter!(0, 5, 10, 15);
        quarter!(1, 6, 11, 12);
        quarter!(2, 7, 8, 13);
        quarter!(3, 4, 9, 14);
    }
    for (o, (s, v)) in out.iter_mut().zip(state.iter().zip(x.iter())) {
        *o = s.wrapping_add(*v);
    }
}

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut out = [0u32; 16];
        chacha8_block(&self.key, self.counter, &mut out);
        self.buffer = out;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformish_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
