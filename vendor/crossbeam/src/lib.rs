//! Offline vendored stand-in for `crossbeam`: an unbounded MPMC channel
//! (the only API this workspace uses) built on `Mutex` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (crossbeam channels are MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a closed channel")
        }
    }

    /// Error returned when the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, closed channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying `value` back when the channel
        /// is closed on the receiving side.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty
        /// and at least one sender is alive.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues without blocking; `None` when presently empty.
        pub fn try_recv_opt(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn multi_consumer_drains_everything() {
            let (tx, rx) = unbounded();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}
